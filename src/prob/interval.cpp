#include "prob/interval.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace sysuq::prob {

namespace {
double clamp01(double v) { return std::clamp(v, 0.0, 1.0); }
}

ProbInterval::ProbInterval(double p) : ProbInterval(p, p) {}

ProbInterval::ProbInterval(double lo, double hi) : lo_(lo), hi_(hi) {
  if (!(0.0 <= lo && lo <= hi && hi <= 1.0))
    throw std::invalid_argument("ProbInterval: require 0 <= lo <= hi <= 1");
}

ProbInterval ProbInterval::vacuous() { return {0.0, 1.0}; }

bool ProbInterval::intersects(const ProbInterval& other) const {
  return lo_ <= other.hi_ && other.lo_ <= hi_;
}

ProbInterval ProbInterval::operator+(const ProbInterval& o) const {
  return {clamp01(lo_ + o.lo_), clamp01(hi_ + o.hi_)};
}

ProbInterval ProbInterval::operator*(const ProbInterval& o) const {
  // All endpoints are non-negative, so products are monotone.
  return {lo_ * o.lo_, hi_ * o.hi_};
}

ProbInterval ProbInterval::complement() const { return {1.0 - hi_, 1.0 - lo_}; }

ProbInterval ProbInterval::intersect(const ProbInterval& other) const {
  if (!intersects(other))
    throw std::invalid_argument("ProbInterval::intersect: disjoint intervals");
  return {std::max(lo_, other.lo_), std::min(hi_, other.hi_)};
}

ProbInterval ProbInterval::hull(const ProbInterval& other) const {
  return {std::min(lo_, other.lo_), std::max(hi_, other.hi_)};
}

ProbInterval ProbInterval::independent_or(const ProbInterval& o) const {
  return {1.0 - (1.0 - lo_) * (1.0 - o.lo_), 1.0 - (1.0 - hi_) * (1.0 - o.hi_)};
}

std::string ProbInterval::to_string() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "[%.6g, %.6g]", lo_, hi_);
  return buf;
}

}  // namespace sysuq::prob
