#include "prob/polychaos.hpp"

#include <cmath>
#include <stdexcept>

namespace sysuq::prob {

namespace {

// Evaluates He_k (probabilists' Hermite) or P_k (Legendre) by the
// three-term recurrence, returning the value at x.
double poly_value(PolyBasis basis, std::size_t k, double x) {
  double prev = 1.0;  // degree 0
  if (k == 0) return prev;
  double cur = x;  // degree 1 for both families
  for (std::size_t n = 1; n < k; ++n) {
    double next;
    if (basis == PolyBasis::kHermite) {
      next = x * cur - static_cast<double>(n) * prev;
    } else {
      next = ((2.0 * n + 1.0) * x * cur - static_cast<double>(n) * prev) /
             (static_cast<double>(n) + 1.0);
    }
    prev = cur;
    cur = next;
  }
  return cur;
}

// Roots of the degree-n basis polynomial by grid bracketing + bisection.
// Robust for the modest n (<= ~40) quadrature needs.
std::vector<double> poly_roots(PolyBasis basis, std::size_t n) {
  if (n == 0) return {};
  const double bound = basis == PolyBasis::kHermite
                           ? 2.0 * std::sqrt(static_cast<double>(n)) + 4.0
                           : 1.0;
  const std::size_t grid = 400 * n;
  std::vector<double> roots;
  double x0 = -bound;
  double f0 = poly_value(basis, n, x0);
  for (std::size_t i = 1; i <= grid; ++i) {
    const double x1 =
        -bound + 2.0 * bound * static_cast<double>(i) / static_cast<double>(grid);
    const double f1 = poly_value(basis, n, x1);
    if (f0 == 0.0) roots.push_back(x0);  // sysuq-lint-allow(float-eq): exact root hit
    if (f0 * f1 < 0.0) {
      double lo = x0, hi = x1;
      for (int it = 0; it < 100; ++it) {
        const double mid = 0.5 * (lo + hi);
        const double fm = poly_value(basis, n, mid);
        if (fm == 0.0) {  // sysuq-lint-allow(float-eq): exact root hit
          lo = hi = mid;
          break;
        }
        if (poly_value(basis, n, lo) * fm < 0.0) {
          hi = mid;
        } else {
          lo = mid;
        }
      }
      roots.push_back(0.5 * (lo + hi));
    }
    x0 = x1;
    f0 = f1;
  }
  if (roots.size() != n)
    throw std::runtime_error("poly_roots: failed to bracket all roots");
  return roots;
}

double factorial(std::size_t n) {
  double f = 1.0;
  for (std::size_t i = 2; i <= n; ++i) f *= static_cast<double>(i);
  return f;
}

}  // namespace

double basis_eval(PolyBasis basis, std::size_t k, double x) {
  return poly_value(basis, k, x);
}

double basis_norm2(PolyBasis basis, std::size_t k) {
  if (basis == PolyBasis::kHermite) return factorial(k);
  return 1.0 / (2.0 * static_cast<double>(k) + 1.0);
}

QuadratureRule gauss_rule(PolyBasis basis, std::size_t n) {
  if (n == 0) throw std::invalid_argument("gauss_rule: zero nodes");
  QuadratureRule rule;
  rule.nodes = poly_roots(basis, n);
  rule.weights.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = rule.nodes[i];
    if (basis == PolyBasis::kHermite) {
      // w_i = (n-1)! * n / (n^2 [He_{n-1}(x_i)]^2) — probabilists' form
      // normalized to the N(0,1) measure: w_i = n! / (n^2 He_{n-1}^2).
      const double h = poly_value(basis, n - 1, x);
      rule.weights[i] = factorial(n) /
                        (static_cast<double>(n) * static_cast<double>(n) * h * h);
    } else {
      // Uniform[-1,1] *probability* measure: standard GL weight / 2.
      // P'_n(x) via the identity (1-x^2) P'_n = n (P_{n-1} - x P_n).
      const double pn = poly_value(basis, n, x);
      const double pn1 = poly_value(basis, n - 1, x);
      const double dpn = static_cast<double>(n) * (pn1 - x * pn) / (1.0 - x * x);
      rule.weights[i] = 1.0 / ((1.0 - x * x) * dpn * dpn);
    }
  }
  return rule;
}

PolynomialChaos1D::PolynomialChaos1D(PolyBasis basis, std::size_t order,
                                     const std::function<double(double)>& f,
                                     std::size_t extra_nodes)
    : basis_(basis), coeff_(order + 1, 0.0) {
  const auto rule = gauss_rule(basis, order + 1 + extra_nodes);
  for (std::size_t k = 0; k <= order; ++k) {
    double num = 0.0;
    for (std::size_t i = 0; i < rule.nodes.size(); ++i) {
      num += rule.weights[i] * f(rule.nodes[i]) *
             poly_value(basis, k, rule.nodes[i]);
    }
    coeff_[k] = num / basis_norm2(basis, k);
  }
}

double PolynomialChaos1D::coefficient(std::size_t k) const {
  if (k >= coeff_.size()) throw std::out_of_range("PolynomialChaos1D: order");
  return coeff_[k];
}

double PolynomialChaos1D::evaluate(double x) const {
  double v = 0.0;
  for (std::size_t k = 0; k < coeff_.size(); ++k)
    v += coeff_[k] * poly_value(basis_, k, x);
  return v;
}

double PolynomialChaos1D::variance() const {
  double v = 0.0;
  for (std::size_t k = 1; k < coeff_.size(); ++k)
    v += coeff_[k] * coeff_[k] * basis_norm2(basis_, k);
  return v;
}

PolynomialChaosND::PolynomialChaosND(
    PolyBasis basis, std::size_t dim, std::size_t order,
    const std::function<double(const std::vector<double>&)>& f,
    std::size_t extra_nodes)
    : basis_(basis), dim_(dim) {
  if (dim == 0) throw std::invalid_argument("PolynomialChaosND: zero dim");
  if (dim > 6)
    throw std::invalid_argument("PolynomialChaosND: tensor rule capped at 6D");

  // Enumerate total-degree multi-indices.
  std::vector<std::size_t> idx(dim, 0);
  const std::function<void(std::size_t, std::size_t)> recurse =
      [&](std::size_t pos, std::size_t budget) {
        if (pos == dim) {
          indices_.push_back(idx);
          return;
        }
        for (std::size_t d = 0; d <= budget; ++d) {
          idx[pos] = d;
          recurse(pos + 1, budget - d);
        }
        idx[pos] = 0;
      };
  recurse(0, order);

  // Tensorized quadrature.
  const auto rule = gauss_rule(basis, order + 1 + extra_nodes);
  const std::size_t q = rule.nodes.size();
  std::size_t total = 1;
  for (std::size_t d = 0; d < dim; ++d) total *= q;

  coeff_.assign(indices_.size(), 0.0);
  std::vector<std::size_t> point(dim, 0);
  std::vector<double> x(dim);
  for (std::size_t flat = 0; flat < total; ++flat) {
    double w = 1.0;
    for (std::size_t d = 0; d < dim; ++d) {
      x[d] = rule.nodes[point[d]];
      w *= rule.weights[point[d]];
    }
    const double fx = f(x);
    for (std::size_t t = 0; t < indices_.size(); ++t) {
      double psi = 1.0;
      for (std::size_t d = 0; d < dim; ++d)
        psi *= poly_value(basis, indices_[t][d], x[d]);
      coeff_[t] += w * fx * psi;
    }
    for (std::size_t d = dim; d-- > 0;) {
      if (++point[d] < q) break;
      point[d] = 0;
    }
  }
  for (std::size_t t = 0; t < indices_.size(); ++t)
    coeff_[t] /= term_norm2(t);
}

const std::vector<std::size_t>& PolynomialChaosND::multi_index(
    std::size_t t) const {
  if (t >= indices_.size()) throw std::out_of_range("PolynomialChaosND: term");
  return indices_[t];
}

double PolynomialChaosND::coefficient(std::size_t t) const {
  if (t >= coeff_.size()) throw std::out_of_range("PolynomialChaosND: term");
  return coeff_[t];
}

double PolynomialChaosND::term_norm2(std::size_t t) const {
  double n2 = 1.0;
  for (std::size_t d = 0; d < dim_; ++d)
    n2 *= basis_norm2(basis_, indices_[t][d]);
  return n2;
}

double PolynomialChaosND::evaluate(const std::vector<double>& x) const {
  if (x.size() != dim_)
    throw std::invalid_argument("PolynomialChaosND: dimension mismatch");
  double v = 0.0;
  for (std::size_t t = 0; t < indices_.size(); ++t) {
    double psi = 1.0;
    for (std::size_t d = 0; d < dim_; ++d)
      psi *= poly_value(basis_, indices_[t][d], x[d]);
    v += coeff_[t] * psi;
  }
  return v;
}

double PolynomialChaosND::variance() const {
  double v = 0.0;
  for (std::size_t t = 0; t < indices_.size(); ++t) {
    bool constant = true;
    for (std::size_t d = 0; d < dim_; ++d) constant = constant && indices_[t][d] == 0;
    if (!constant) v += coeff_[t] * coeff_[t] * term_norm2(t);
  }
  return v;
}

double PolynomialChaosND::sobol_first(std::size_t i) const {
  if (i >= dim_) throw std::out_of_range("PolynomialChaosND: input index");
  const double total = variance();
  if (total == 0.0) return 0.0;  // sysuq-lint-allow(float-eq): zero total guard
  double v = 0.0;
  for (std::size_t t = 0; t < indices_.size(); ++t) {
    bool only_i = indices_[t][i] > 0;
    for (std::size_t d = 0; d < dim_ && only_i; ++d) {
      if (d != i && indices_[t][d] > 0) only_i = false;
    }
    if (only_i) v += coeff_[t] * coeff_[t] * term_norm2(t);
  }
  return v / total;
}

double PolynomialChaosND::sobol_total(std::size_t i) const {
  if (i >= dim_) throw std::out_of_range("PolynomialChaosND: input index");
  const double total = variance();
  if (total == 0.0) return 0.0;  // sysuq-lint-allow(float-eq): zero total guard
  double v = 0.0;
  for (std::size_t t = 0; t < indices_.size(); ++t) {
    if (indices_[t][i] > 0) v += coeff_[t] * coeff_[t] * term_norm2(t);
  }
  return v / total;
}

}  // namespace sysuq::prob
