// Probability intervals — imprecise probabilities [lo, hi].
//
// Evidence theory (Sec. V.B) produces belief/plausibility *bounds* rather
// than point probabilities; interval CPTs in the evidential network layer
// propagate these. The arithmetic here is standard interval arithmetic
// restricted to [0, 1] with the operations needed by credal propagation.
#pragma once

#include <string>

namespace sysuq::prob {

/// A closed interval [lo, hi] within [0, 1] representing an imprecise
/// probability. Invariant: 0 <= lo <= hi <= 1.
class ProbInterval {
 public:
  /// Degenerate (precise) interval [p, p].
  explicit ProbInterval(double p);

  /// Interval [lo, hi]; validated.
  ProbInterval(double lo, double hi);

  /// The vacuous interval [0, 1] — total ignorance.
  [[nodiscard]] static ProbInterval vacuous();

  [[nodiscard]] double lo() const { return lo_; }
  [[nodiscard]] double hi() const { return hi_; }
  /// Width hi - lo: the epistemic imprecision carried by the interval.
  [[nodiscard]] double width() const { return hi_ - lo_; }
  /// Midpoint (pignistic-style point summary).
  [[nodiscard]] double mid() const { return 0.5 * (lo_ + hi_); }
  /// True if the interval is a single point.
  [[nodiscard]] bool is_precise() const { return lo_ == hi_; }
  /// True if p lies within [lo, hi].
  [[nodiscard]] bool contains(double p) const { return p >= lo_ && p <= hi_; }
  /// True if the two intervals overlap.
  // sysuq-lint-allow(contract-coverage): total predicate on intervals validated at construction
  [[nodiscard]] bool intersects(const ProbInterval& other) const;

  /// Interval sum, clamped into [0, 1].
  [[nodiscard]] ProbInterval operator+(const ProbInterval& o) const;
  /// Interval product.
  [[nodiscard]] ProbInterval operator*(const ProbInterval& o) const;
  /// Complement [1-hi, 1-lo].
  [[nodiscard]] ProbInterval complement() const;
  /// Intersection; throws if disjoint.
  [[nodiscard]] ProbInterval intersect(const ProbInterval& other) const;
  /// Convex hull (union bound).
  [[nodiscard]] ProbInterval hull(const ProbInterval& other) const;

  /// Noisy-OR-style union for independent events: 1 - (1-a)(1-b).
  // sysuq-lint-allow(contract-coverage): closed form on endpoints validated at construction
  [[nodiscard]] ProbInterval independent_or(const ProbInterval& o) const;

  [[nodiscard]] bool operator==(const ProbInterval& o) const = default;

  /// "[lo, hi]" with 6 significant digits.
  [[nodiscard]] std::string to_string() const;

 private:
  double lo_, hi_;
};

}  // namespace sysuq::prob
