#include "prob/distribution.hpp"

#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "core/contracts.hpp"
#include "core/tolerance.hpp"
#include "prob/special.hpp"

namespace sysuq::prob {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();

void check_prob_arg(double p, const char* who) {
  if (contracts::enforced() && !(p > 0.0 && p < 1.0)) {
    contracts::fail("precondition", "p > 0 && p < 1",
                    (std::string(who) + ": p must be in (0, 1)").c_str());
  }
}
}  // namespace

std::pair<double, double> ContinuousDistribution::central_interval(
    double alpha) const {
  SYSUQ_EXPECT(alpha > 0.0 && alpha < 1.0,
               "central_interval: alpha must be in (0, 1)");
  return {quantile(alpha / 2.0), quantile(1.0 - alpha / 2.0)};
}

// ---------------------------------------------------------------- Uniform

Uniform::Uniform(double lo, double hi) : lo_(lo), hi_(hi) {
  SYSUQ_EXPECT(lo < hi, "Uniform: require lo < hi");
}

double Uniform::pdf(double x) const {
  return (x >= lo_ && x <= hi_) ? 1.0 / (hi_ - lo_) : 0.0;
}

double Uniform::log_pdf(double x) const {
  return (x >= lo_ && x <= hi_) ? -std::log(hi_ - lo_) : kNegInf;
}

double Uniform::cdf(double x) const {
  if (x <= lo_) return 0.0;
  if (x >= hi_) return 1.0;
  return (x - lo_) / (hi_ - lo_);
}

double Uniform::quantile(double p) const {
  check_prob_arg(p, "Uniform::quantile");
  return lo_ + p * (hi_ - lo_);
}

double Uniform::mean() const { return 0.5 * (lo_ + hi_); }
double Uniform::variance() const {
  const double w = hi_ - lo_;
  return w * w / 12.0;
}
double Uniform::sample(Rng& rng) const { return rng.uniform(lo_, hi_); }
double Uniform::entropy() const { return std::log(hi_ - lo_); }

// ----------------------------------------------------------------- Normal

Normal::Normal(double mean, double sigma) : mu_(mean), sigma_(sigma) {
  SYSUQ_EXPECT(sigma > 0.0, "Normal: require sigma > 0");
}

double Normal::pdf(double x) const { return std::exp(log_pdf(x)); }

double Normal::log_pdf(double x) const {
  const double z = (x - mu_) / sigma_;
  return -0.5 * z * z - std::log(sigma_) - 0.5 * std::log(2.0 * M_PI);
}

double Normal::cdf(double x) const { return std_normal_cdf((x - mu_) / sigma_); }

double Normal::quantile(double p) const {
  check_prob_arg(p, "Normal::quantile");
  return mu_ + sigma_ * std_normal_quantile(p);
}

double Normal::sample(Rng& rng) const { return rng.gaussian(mu_, sigma_); }

double Normal::entropy() const {
  return 0.5 * std::log(2.0 * M_PI * M_E * sigma_ * sigma_);
}

// ------------------------------------------------------------ Exponential

Exponential::Exponential(double rate) : rate_(rate) {
  SYSUQ_EXPECT(rate > 0.0, "Exponential: require rate > 0");
}

double Exponential::pdf(double x) const {
  return x < 0.0 ? 0.0 : rate_ * std::exp(-rate_ * x);
}

double Exponential::log_pdf(double x) const {
  return x < 0.0 ? kNegInf : std::log(rate_) - rate_ * x;
}

double Exponential::cdf(double x) const {
  return x < 0.0 ? 0.0 : 1.0 - std::exp(-rate_ * x);
}

double Exponential::quantile(double p) const {
  check_prob_arg(p, "Exponential::quantile");
  return -std::log1p(-p) / rate_;
}

double Exponential::sample(Rng& rng) const { return rng.exponential(rate_); }
double Exponential::entropy() const { return 1.0 - std::log(rate_); }

// ------------------------------------------------------------- Triangular

Triangular::Triangular(double lo, double mode, double hi)
    : lo_(lo), mode_(mode), hi_(hi) {
  SYSUQ_EXPECT(lo <= mode && mode <= hi && lo < hi,
               "Triangular: require lo <= mode <= hi, lo < hi");
}

double Triangular::pdf(double x) const {
  if (x < lo_ || x > hi_) return 0.0;
  const double w = hi_ - lo_;
  if (x < mode_) return 2.0 * (x - lo_) / (w * (mode_ - lo_));
  if (x > mode_) return 2.0 * (hi_ - x) / (w * (hi_ - mode_));
  return 2.0 / w;  // at the mode (handles degenerate side widths)
}

double Triangular::log_pdf(double x) const {
  const double d = pdf(x);
  return d > 0.0 ? std::log(d) : kNegInf;
}

double Triangular::cdf(double x) const {
  if (x <= lo_) return 0.0;
  if (x >= hi_) return 1.0;
  const double w = hi_ - lo_;
  if (x <= mode_) {
    const double num = (x - lo_) * (x - lo_);
    return (mode_ > lo_) ? num / (w * (mode_ - lo_)) : 0.0;
  }
  const double num = (hi_ - x) * (hi_ - x);
  return (hi_ > mode_) ? 1.0 - num / (w * (hi_ - mode_)) : 1.0;
}

double Triangular::quantile(double p) const {
  check_prob_arg(p, "Triangular::quantile");
  const double w = hi_ - lo_;
  const double f = (mode_ - lo_) / w;
  if (p < f) return lo_ + std::sqrt(p * w * (mode_ - lo_));
  return hi_ - std::sqrt((1.0 - p) * w * (hi_ - mode_));
}

double Triangular::mean() const { return (lo_ + mode_ + hi_) / 3.0; }

double Triangular::variance() const {
  return (lo_ * lo_ + mode_ * mode_ + hi_ * hi_ - lo_ * mode_ - lo_ * hi_ -
          mode_ * hi_) /
         18.0;
}

double Triangular::sample(Rng& rng) const {
  const double u = rng.uniform();
  const double w = hi_ - lo_;
  const double f = (mode_ - lo_) / w;
  if (u < f) return lo_ + std::sqrt(u * w * (mode_ - lo_));
  return hi_ - std::sqrt((1.0 - u) * w * (hi_ - mode_));
}

double Triangular::entropy() const { return 0.5 + std::log(0.5 * (hi_ - lo_)); }

// ------------------------------------------------------------------- Beta

Beta::Beta(double a, double b) : a_(a), b_(b) {
  SYSUQ_EXPECT(a > 0.0 && b > 0.0, "Beta: require a, b > 0");
}

double Beta::pdf(double x) const {
  if (x < 0.0 || x > 1.0) return 0.0;
  return std::exp(log_pdf(x));
}

double Beta::log_pdf(double x) const {
  if (x < 0.0 || x > 1.0) return kNegInf;
  if ((x == 0.0 && a_ < 1.0) || (x == 1.0 && b_ < 1.0))  // sysuq-lint-allow(float-eq): support boundary
    return std::numeric_limits<double>::infinity();
  if (x == 0.0 && a_ > 1.0) return kNegInf;  // sysuq-lint-allow(float-eq): support boundary
  if (x == 1.0 && b_ > 1.0) return kNegInf;  // sysuq-lint-allow(float-eq): support boundary
  return (a_ - 1.0) * std::log(x) + (b_ - 1.0) * std::log1p(-x) -
         log_beta(a_, b_);
}

double Beta::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  return reg_inc_beta(a_, b_, x);
}

double Beta::quantile(double p) const {
  check_prob_arg(p, "Beta::quantile");
  return inv_reg_inc_beta(a_, b_, p);
}

double Beta::variance() const {
  const double s = a_ + b_;
  return a_ * b_ / (s * s * (s + 1.0));
}

double Beta::sample(Rng& rng) const {
  const double x = rng.gamma(a_, 1.0);
  const double y = rng.gamma(b_, 1.0);
  return x / (x + y);
}

double Beta::entropy() const {
  // Closed form via digamma; use numerical digamma from lgamma derivative.
  auto digamma = [](double x) {
    // Approximate via finite difference of lgamma with Richardson step —
    // accurate to ~1e-8 for x in the practical range.
    const double h = 1e-5;
    return (log_gamma(x + h) - log_gamma(x - h)) / (2.0 * h);
  };
  return log_beta(a_, b_) - (a_ - 1.0) * digamma(a_) - (b_ - 1.0) * digamma(b_) +
         (a_ + b_ - 2.0) * digamma(a_ + b_);
}

Beta Beta::updated(std::size_t successes, std::size_t failures) const {
  return Beta(a_ + static_cast<double>(successes),
              b_ + static_cast<double>(failures));
}

// ------------------------------------------------------------------ Gamma

Gamma::Gamma(double shape, double scale) : shape_(shape), scale_(scale) {
  SYSUQ_EXPECT(shape > 0.0 && scale > 0.0, "Gamma: require shape, scale > 0");
}

double Gamma::pdf(double x) const { return x < 0.0 ? 0.0 : std::exp(log_pdf(x)); }

double Gamma::log_pdf(double x) const {
  if (x < 0.0) return kNegInf;
  if (x == 0.0) return shape_ < 1.0 ? std::numeric_limits<double>::infinity()  // sysuq-lint-allow(float-eq): support boundary
                                    : (shape_ == 1.0 ? -std::log(scale_) : kNegInf);  // sysuq-lint-allow(float-eq): exact shape-1 special case
  return (shape_ - 1.0) * std::log(x) - x / scale_ - log_gamma(shape_) -
         shape_ * std::log(scale_);
}

double Gamma::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return reg_lower_gamma(shape_, x / scale_);
}

double Gamma::quantile(double p) const {
  check_prob_arg(p, "Gamma::quantile");
  // Bisection on the CDF (monotone); bracket by expanding the upper bound.
  double lo = 0.0;
  double hi = mean() + 10.0 * std::sqrt(variance()) + 10.0 * scale_;
  while (cdf(hi) < p) hi *= 2.0;
  for (int it = 0; it < 200; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (cdf(mid) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < tolerance::kSolver * (1.0 + hi)) break;
  }
  return 0.5 * (lo + hi);
}

double Gamma::sample(Rng& rng) const { return rng.gamma(shape_, scale_); }

double Gamma::entropy() const {
  auto digamma = [](double x) {
    const double h = 1e-5;
    return (log_gamma(x + h) - log_gamma(x - h)) / (2.0 * h);
  };
  return shape_ + std::log(scale_) + log_gamma(shape_) +
         (1.0 - shape_) * digamma(shape_);
}

// ---------------------------------------------------------------- Weibull

Weibull::Weibull(double shape, double scale) : k_(shape), lambda_(scale) {
  SYSUQ_EXPECT(shape > 0.0 && scale > 0.0,
               "Weibull: require shape, scale > 0");
}

double Weibull::pdf(double x) const {
  if (x < 0.0) return 0.0;
  if (x == 0.0) return k_ > 1.0 ? 0.0 : (k_ == 1.0 ? 1.0 / lambda_ : 0.0);  // sysuq-lint-allow(float-eq): support boundary
  return std::exp(log_pdf(x));
}

double Weibull::log_pdf(double x) const {
  if (x <= 0.0) return kNegInf;
  const double z = x / lambda_;
  return std::log(k_ / lambda_) + (k_ - 1.0) * std::log(z) - std::pow(z, k_);
}

double Weibull::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return 1.0 - std::exp(-std::pow(x / lambda_, k_));
}

double Weibull::quantile(double p) const {
  check_prob_arg(p, "Weibull::quantile");
  return lambda_ * std::pow(-std::log1p(-p), 1.0 / k_);
}

double Weibull::mean() const {
  return lambda_ * std::exp(log_gamma(1.0 + 1.0 / k_));
}

double Weibull::variance() const {
  const double g1 = std::exp(log_gamma(1.0 + 1.0 / k_));
  const double g2 = std::exp(log_gamma(1.0 + 2.0 / k_));
  return lambda_ * lambda_ * (g2 - g1 * g1);
}

double Weibull::sample(Rng& rng) const {
  return lambda_ * std::pow(-std::log1p(-rng.uniform()), 1.0 / k_);
}

double Weibull::entropy() const {
  constexpr double kEulerGamma = 0.5772156649015329;
  return kEulerGamma * (1.0 - 1.0 / k_) + std::log(lambda_ / k_) + 1.0;
}

double Weibull::hazard(double t) const {
  SYSUQ_EXPECT(t > 0.0, "Weibull::hazard: t <= 0");
  return (k_ / lambda_) * std::pow(t / lambda_, k_ - 1.0);
}

// -------------------------------------------------------------- LogNormal

LogNormal::LogNormal(double mu, double sigma) : mu_(mu), sigma_(sigma) {
  SYSUQ_EXPECT(sigma > 0.0, "LogNormal: sigma <= 0");
}

double LogNormal::pdf(double x) const {
  return x <= 0.0 ? 0.0 : std::exp(log_pdf(x));
}

double LogNormal::log_pdf(double x) const {
  if (x <= 0.0) return kNegInf;
  const double z = (std::log(x) - mu_) / sigma_;
  return -0.5 * z * z - std::log(x * sigma_) - 0.5 * std::log(2.0 * M_PI);  // sysuq-lint-allow(log-domain): z is a standardized residual of log x, not a log-probability
}

double LogNormal::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return std_normal_cdf((std::log(x) - mu_) / sigma_);
}

double LogNormal::quantile(double p) const {
  check_prob_arg(p, "LogNormal::quantile");
  return std::exp(mu_ + sigma_ * std_normal_quantile(p));
}

double LogNormal::mean() const { return std::exp(mu_ + 0.5 * sigma_ * sigma_); }

double LogNormal::variance() const {
  const double s2 = sigma_ * sigma_;
  return (std::exp(s2) - 1.0) * std::exp(2.0 * mu_ + s2);
}

double LogNormal::sample(Rng& rng) const {
  return std::exp(rng.gaussian(mu_, sigma_));
}

double LogNormal::entropy() const {
  return mu_ + 0.5 * std::log(2.0 * M_PI * M_E * sigma_ * sigma_);
}

double LogNormal::median() const { return std::exp(mu_); }

double LogNormal::error_factor() const {
  return std::exp(sigma_ * std_normal_quantile(0.95));
}

// -------------------------------------------------------------- Dirichlet

Dirichlet::Dirichlet(std::vector<double> alpha) : alpha_(std::move(alpha)) {
  SYSUQ_EXPECT(alpha_.size() >= 2, "Dirichlet: need at least 2 categories");
  for (double a : alpha_) {
    SYSUQ_EXPECT(a > 0.0, "Dirichlet: require alpha_i > 0");
  }
}

std::vector<double> Dirichlet::mean() const {
  const double a0 = total_concentration();
  std::vector<double> m(alpha_.size());
  for (std::size_t i = 0; i < alpha_.size(); ++i) m[i] = alpha_[i] / a0;
  return m;
}

double Dirichlet::variance(std::size_t i) const {
  if (i >= alpha_.size()) throw std::out_of_range("Dirichlet::variance: index");
  const double a0 = total_concentration();
  return alpha_[i] * (a0 - alpha_[i]) / (a0 * a0 * (a0 + 1.0));
}

Beta Dirichlet::marginal(std::size_t i) const {
  if (i >= alpha_.size()) throw std::out_of_range("Dirichlet::marginal: index");
  return Beta(alpha_[i], total_concentration() - alpha_[i]);
}

double Dirichlet::log_pdf(const std::vector<double>& x) const {
  if (x.size() != alpha_.size())
    throw std::invalid_argument("Dirichlet::log_pdf: dimension mismatch");
  double sum = 0.0, lp = 0.0, lognorm = -log_gamma(total_concentration());
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] < 0.0) return kNegInf;
    sum += x[i];
    lognorm += log_gamma(alpha_[i]);
    lp += (alpha_[i] - 1.0) * std::log(std::max(x[i], tolerance::kUnderflow));
  }
  if (std::fabs(sum - 1.0) > tolerance::kProbSum) return kNegInf;
  return lp - lognorm;
}

std::vector<double> Dirichlet::sample(Rng& rng) const {
  std::vector<double> g(alpha_.size());
  double total = 0.0;
  for (std::size_t i = 0; i < alpha_.size(); ++i) {
    g[i] = rng.gamma(alpha_[i], 1.0);
    total += g[i];  // sysuq-lint-allow(log-domain): summing gamma variates for normalization, not a probability mass
  }
  for (double& v : g) v /= total;
  return g;
}

Dirichlet Dirichlet::updated(const std::vector<std::size_t>& counts) const {
  if (counts.size() != alpha_.size())
    throw std::invalid_argument("Dirichlet::updated: dimension mismatch");
  std::vector<double> a = alpha_;
  for (std::size_t i = 0; i < a.size(); ++i) a[i] += static_cast<double>(counts[i]);
  return Dirichlet(std::move(a));
}

double Dirichlet::total_concentration() const {
  return std::accumulate(alpha_.begin(), alpha_.end(), 0.0);
}

double Dirichlet::mean_credible_width(double alpha_level) const {
  double total = 0.0;
  for (std::size_t i = 0; i < alpha_.size(); ++i) {
    const auto [lo, hi] = marginal(i).central_interval(alpha_level);
    total += hi - lo;
  }
  return total / static_cast<double>(alpha_.size());
}

}  // namespace sysuq::prob
