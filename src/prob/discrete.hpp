// Discrete distributions: Categorical, Bernoulli, Binomial, Poisson, and
// frequentist estimation of categoricals from observed counts.
//
// The Categorical is the workhorse of the Bayesian-network layer (every
// CPT row is a categorical) and of the paper's Table I example.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "prob/rng.hpp"

namespace sysuq::prob {

/// A probability mass function over {0, .., k-1}.
///
/// Invariant: probabilities are non-negative and sum to 1 within
/// tolerance::kProbSum (a contract checked at construction; `normalized`
/// relaxes the input).
class Categorical {
 public:
  /// Constructs from probabilities that must already sum to one.
  explicit Categorical(std::vector<double> probs);

  /// Constructs by normalizing non-negative weights (at least one > 0).
  [[nodiscard]] static Categorical normalized(std::vector<double> weights);

  /// Uniform distribution over k categories.
  [[nodiscard]] static Categorical uniform(std::size_t k);

  /// Point mass on category i out of k.
  [[nodiscard]] static Categorical delta(std::size_t i, std::size_t k);

  /// Number of categories.
  [[nodiscard]] std::size_t size() const { return p_.size(); }

  /// P(X = i).
  [[nodiscard]] double p(std::size_t i) const;

  /// Full probability vector.
  [[nodiscard]] const std::vector<double>& probs() const { return p_; }

  /// Shannon entropy in nats.
  [[nodiscard]] double entropy() const;

  /// Index of the most probable category (lowest index on ties).
  [[nodiscard]] std::size_t argmax() const;

  /// Maximum probability value.
  [[nodiscard]] double max_prob() const;

  /// Draws a category.
  [[nodiscard]] std::size_t sample(Rng& rng) const;

  /// Total-variation distance to another categorical of equal size.
  [[nodiscard]] double total_variation(const Categorical& other) const;

  /// Mixes with another categorical: (1-w)*this + w*other.
  [[nodiscard]] Categorical mixed(const Categorical& other, double w) const;

 private:
  std::vector<double> p_;
};

/// Bernoulli(p) over {0, 1}.
class Bernoulli {
 public:
  explicit Bernoulli(double p);
  [[nodiscard]] double p() const { return p_; }
  [[nodiscard]] double pmf(bool x) const { return x ? p_ : 1.0 - p_; }
  [[nodiscard]] double mean() const { return p_; }
  [[nodiscard]] double variance() const { return p_ * (1.0 - p_); }
  [[nodiscard]] double entropy() const;
  [[nodiscard]] bool sample(Rng& rng) const;

 private:
  double p_;
};

/// Binomial(n, p) over {0..n}.
class Binomial {
 public:
  Binomial(std::size_t n, double p);
  [[nodiscard]] std::size_t n() const { return n_; }
  [[nodiscard]] double p() const { return p_; }
  [[nodiscard]] double pmf(std::size_t k) const;
  [[nodiscard]] double log_pmf(std::size_t k) const;
  [[nodiscard]] double cdf(std::size_t k) const;
  [[nodiscard]] double mean() const { return static_cast<double>(n_) * p_; }
  [[nodiscard]] double variance() const {
    return static_cast<double>(n_) * p_ * (1.0 - p_);
  }
  [[nodiscard]] std::size_t sample(Rng& rng) const;

 private:
  std::size_t n_;
  double p_;
};

/// Poisson(lambda) over non-negative integers.
class Poisson {
 public:
  explicit Poisson(double lambda);
  [[nodiscard]] double lambda() const { return lambda_; }
  [[nodiscard]] double pmf(std::size_t k) const;
  [[nodiscard]] double log_pmf(std::size_t k) const;
  [[nodiscard]] double cdf(std::size_t k) const;
  [[nodiscard]] double mean() const { return lambda_; }
  [[nodiscard]] double variance() const { return lambda_; }
  [[nodiscard]] std::size_t sample(Rng& rng) const;

 private:
  double lambda_;
};

/// Frequentist estimator of a categorical from observed counts — the
/// "model B" estimation procedure of the paper's two-planet example and
/// the field-observation engine of the uncertainty-removal loop.
class CategoricalCounter {
 public:
  /// k categories, all counts start at zero.
  explicit CategoricalCounter(std::size_t k);

  /// Records one observation of category i.
  void observe(std::size_t i);

  /// Records `n` observations of category i.
  void observe(std::size_t i, std::size_t n);

  /// Total number of observations.
  [[nodiscard]] std::size_t total() const { return total_; }

  /// Raw counts.
  [[nodiscard]] const std::vector<std::size_t>& counts() const { return counts_; }

  /// Maximum-likelihood estimate (throws if no observations yet).
  [[nodiscard]] Categorical mle() const;

  /// Laplace-smoothed estimate with pseudo-count `smoothing` per category.
  [[nodiscard]] Categorical smoothed(double smoothing = 1.0) const;

  /// Number of categories never observed — a crude ontological indicator.
  [[nodiscard]] std::size_t unseen_categories() const;

  /// Good–Turing missing-mass estimate: expected probability of the *next*
  /// observation being a category seen exactly zero times, estimated as
  /// (#categories seen exactly once) / total. This is the library's
  /// forecast of ontological uncertainty from frequency data alone.
  [[nodiscard]] double good_turing_missing_mass() const;

 private:
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace sysuq::prob
