#include "prob/statistics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "prob/special.hpp"

namespace sysuq::prob {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  if (n_ == 0) throw std::logic_error("RunningStats::min: empty");
  return min_;
}

double RunningStats::max() const {
  if (n_ == 0) throw std::logic_error("RunningStats::max: empty");
  return max_;
}

double RunningStats::std_error() const {
  if (n_ == 0) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(n_));
}

std::pair<double, double> RunningStats::mean_confidence_interval(
    double alpha) const {
  if (!(alpha > 0.0 && alpha < 1.0))
    throw std::invalid_argument("mean_confidence_interval: alpha in (0, 1)");
  const double z = std_normal_quantile(1.0 - alpha / 2.0);
  const double half = z * std_error();
  return {mean_ - half, mean_ + half};
}

double quantile(std::vector<double> sample, double p) {
  if (sample.empty()) throw std::invalid_argument("quantile: empty sample");
  if (p < 0.0 || p > 1.0) throw std::invalid_argument("quantile: p outside [0,1]");
  std::sort(sample.begin(), sample.end());
  if (sample.size() == 1) return sample[0];
  const double h = p * static_cast<double>(sample.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(h));
  const auto hi = std::min(lo + 1, sample.size() - 1);
  const double frac = h - static_cast<double>(lo);
  return sample[lo] * (1.0 - frac) + sample[hi] * frac;
}

std::pair<double, double> wilson_interval(std::size_t k, std::size_t n,
                                          double alpha) {
  if (n == 0) throw std::invalid_argument("wilson_interval: n == 0");
  if (k > n) throw std::invalid_argument("wilson_interval: k > n");
  const double z = std_normal_quantile(1.0 - alpha / 2.0);
  const double nn = static_cast<double>(n);
  const double phat = static_cast<double>(k) / nn;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / nn;
  const double center = (phat + z2 / (2.0 * nn)) / denom;
  const double half =
      z * std::sqrt(phat * (1.0 - phat) / nn + z2 / (4.0 * nn * nn)) / denom;
  return {std::max(0.0, center - half), std::min(1.0, center + half)};
}

double pearson_correlation(const std::vector<double>& x,
                           const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2)
    throw std::invalid_argument("pearson_correlation: need equal sizes >= 2");
  RunningStats sx, sy;
  for (double v : x) sx.add(v);
  for (double v : y) sy.add(v);
  double cov = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i)
    cov += (x[i] - sx.mean()) * (y[i] - sy.mean());
  cov /= static_cast<double>(x.size() - 1);
  const double denom = sx.stddev() * sy.stddev();
  if (denom == 0.0) throw std::invalid_argument("pearson_correlation: zero variance");  // sysuq-lint-allow(float-eq): exact zero variance guard
  return cov / denom;
}

}  // namespace sysuq::prob
