#include "prob/special.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/contracts.hpp"
#include "core/tolerance.hpp"

namespace sysuq::prob {
namespace {

constexpr double kEps = tolerance::kSeries;
constexpr double kFpMin = tolerance::kUnderflow;
constexpr int kMaxIter = 300;

// Continued-fraction evaluation of the incomplete beta function
// (Lentz's algorithm, as in Numerical Recipes betacf).
double beta_continued_fraction(double a, double b, double x) {
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const double m2 = 2.0 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

// Series expansion of P(a, x) for x < a + 1.
double gamma_series(double a, double x) {
  double sum = 1.0 / a;
  double term = sum;
  double ap = a;
  for (int n = 0; n < kMaxIter; ++n) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::fabs(term) < std::fabs(sum) * kEps) break;
  }
  return sum * std::exp(-x + a * std::log(x) - log_gamma(a));
}

// Continued fraction of Q(a, x) for x >= a + 1.
double gamma_continued_fraction(double a, double x) {
  double b = x + 1.0 - a;
  double c = 1.0 / kFpMin;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIter; ++i) {
    const double an = -i * (i - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = b + an / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h * std::exp(-x + a * std::log(x) - log_gamma(a));
}

}  // namespace

double log_gamma(double x) {
  SYSUQ_EXPECT(x > 0.0, "log_gamma: x must be > 0");
  return std::lgamma(x);
}

double log_beta(double a, double b) {
  return log_gamma(a) + log_gamma(b) - log_gamma(a + b);
}

double reg_lower_gamma(double a, double x) {
  SYSUQ_EXPECT(a > 0.0 && x >= 0.0, "reg_lower_gamma: require a > 0, x >= 0");
  if (x == 0.0) return 0.0;  // sysuq-lint-allow(float-eq): exact zero
  if (x < a + 1.0) return gamma_series(a, x);
  return 1.0 - gamma_continued_fraction(a, x);
}

double reg_upper_gamma(double a, double x) { return 1.0 - reg_lower_gamma(a, x); }

double reg_inc_beta(double a, double b, double x) {
  SYSUQ_EXPECT(a > 0.0 && b > 0.0, "reg_inc_beta: require a, b > 0");
  SYSUQ_EXPECT(x >= 0.0 && x <= 1.0, "reg_inc_beta: require x in [0, 1]");
  if (x == 0.0) return 0.0;  // sysuq-lint-allow(float-eq): support boundary
  if (x == 1.0) return 1.0;  // sysuq-lint-allow(float-eq): support boundary
  const double ln_front =
      a * std::log(x) + b * std::log(1.0 - x) - log_beta(a, b);
  const double front = std::exp(ln_front);
  // Use the symmetry relation to keep the continued fraction convergent.
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * beta_continued_fraction(a, b, x) / a;
  }
  return 1.0 - front * beta_continued_fraction(b, a, 1.0 - x) / b;
}

double inv_reg_inc_beta(double a, double b, double p) {
  SYSUQ_ASSERT_PROB(p, "inv_reg_inc_beta: p");
  if (p == 0.0) return 0.0;  // sysuq-lint-allow(float-eq): support boundary
  if (p == 1.0) return 1.0;  // sysuq-lint-allow(float-eq): support boundary
  // Bisection with Newton acceleration; the CDF is strictly monotone.
  double lo = 0.0, hi = 1.0;
  double x = a / (a + b);  // start at the mean
  for (int it = 0; it < 200; ++it) {
    const double f = reg_inc_beta(a, b, x) - p;
    if (f > 0.0) {
      hi = x;
    } else {
      lo = x;
    }
    // Newton step using the Beta pdf as derivative.
    const double ln_pdf =
        (a - 1.0) * std::log(x) + (b - 1.0) * std::log(1.0 - x) - log_beta(a, b);
    const double pdf = std::exp(ln_pdf);
    double nx = (pdf > kFpMin) ? x - f / pdf : 0.5 * (lo + hi);
    if (!(nx > lo && nx < hi)) nx = 0.5 * (lo + hi);
    if (std::fabs(nx - x) < tolerance::kRoot) return nx;
    x = nx;
  }
  return x;
}

double std_normal_cdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

double std_normal_quantile(double p) {
  SYSUQ_EXPECT(p > 0.0 && p < 1.0, "std_normal_quantile: require p in (0, 1)");
  // Acklam's rational approximation.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  double x;
  if (p < plow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - plow) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One Halley refinement step.
  const double e = std_normal_cdf(x) - p;
  const double u = e * std::sqrt(2.0 * M_PI) * std::exp(x * x / 2.0);
  x = x - u / (1.0 + x * u / 2.0);
  return x;
}

double erf(double x) { return std::erf(x); }

double log_factorial(std::size_t n) { return log_gamma(static_cast<double>(n) + 1.0); }

double log_binomial_coeff(std::size_t n, std::size_t k) {
  SYSUQ_EXPECT(k <= n, "log_binomial_coeff: k > n");
  return log_factorial(n) - log_factorial(k) - log_factorial(n - k);
}

double log_add_exp(double a, double b) {
  if (a == -std::numeric_limits<double>::infinity()) return b;
  if (b == -std::numeric_limits<double>::infinity()) return a;
  const double m = std::max(a, b);
  return m + std::log(std::exp(a - m) + std::exp(b - m));
}

}  // namespace sysuq::prob
