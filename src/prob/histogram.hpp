// Histograms / empirical distributions.
//
// `Histogram2D` is the formal system of the paper's "model B" (Fig. 2): a
// frequentist spatial-occupancy model built by repeatedly observing planet
// positions. Its cell probabilities carry aleatory uncertainty (the model
// is probabilistic by construction) and, at finite sample size, epistemic
// uncertainty (gap between observed and true frequencies).
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "prob/discrete.hpp"

namespace sysuq::prob {

/// Uniform-bin 1-D histogram over [lo, hi). Out-of-range samples are
/// counted separately as underflow/overflow.
class Histogram1D {
 public:
  Histogram1D(double lo, double hi, std::size_t bins);

  /// Records a sample.
  void add(double x);

  /// Number of bins.
  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  /// In-range observation count.
  [[nodiscard]] std::size_t total() const { return total_; }
  /// Count of bin i.
  [[nodiscard]] std::size_t count(std::size_t i) const;
  /// Samples below lo / at-or-above hi.
  [[nodiscard]] std::size_t underflow() const { return underflow_; }
  [[nodiscard]] std::size_t overflow() const { return overflow_; }
  /// Center of bin i.
  [[nodiscard]] double bin_center(std::size_t i) const;
  /// Bin width.
  [[nodiscard]] double bin_width() const;
  /// Empirical probability of bin i (throws if no in-range samples).
  [[nodiscard]] double probability(std::size_t i) const;
  /// Empirical density at bin i (probability / bin width).
  [[nodiscard]] double density(std::size_t i) const;
  /// The histogram as a categorical over bins.
  [[nodiscard]] Categorical distribution() const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0, underflow_ = 0, overflow_ = 0;
};

/// Uniform-bin 2-D histogram over [xlo, xhi) x [ylo, yhi).
class Histogram2D {
 public:
  Histogram2D(double xlo, double xhi, std::size_t xbins, double ylo, double yhi,
              std::size_t ybins);

  /// Records a sample; out-of-range samples are counted as outside.
  void add(double x, double y);

  [[nodiscard]] std::size_t xbins() const { return xbins_; }
  [[nodiscard]] std::size_t ybins() const { return ybins_; }
  /// In-range observation count.
  [[nodiscard]] std::size_t total() const { return total_; }
  /// Out-of-range observation count.
  [[nodiscard]] std::size_t outside() const { return outside_; }
  /// Count in cell (ix, iy).
  [[nodiscard]] std::size_t count(std::size_t ix, std::size_t iy) const;
  /// Empirical cell probability (throws if no in-range samples).
  [[nodiscard]] double probability(std::size_t ix, std::size_t iy) const;
  /// Probability that a sample falls within the axis-aligned frame
  /// [x0,x1) x [y0,y1), computed by summing fully/partially covered cells
  /// with area-fraction weighting of boundary cells.
  [[nodiscard]] double frame_probability(double x0, double x1, double y0,
                                         double y1) const;
  /// Flattened (row-major over y within x) categorical over cells.
  [[nodiscard]] Categorical distribution() const;
  /// Total-variation distance against another equal-shape histogram's
  /// empirical distribution.
  [[nodiscard]] double total_variation(const Histogram2D& other) const;

 private:
  double xlo_, xhi_, ylo_, yhi_;
  std::size_t xbins_, ybins_;
  std::vector<std::size_t> counts_;  // xbins * ybins, row-major
  std::size_t total_ = 0, outside_ = 0;

  [[nodiscard]] std::size_t index(std::size_t ix, std::size_t iy) const;
};

}  // namespace sysuq::prob
