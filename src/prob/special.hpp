// Special mathematical functions used by the probability substrate.
//
// Everything here is deterministic, pure, and header-declared so the
// distribution layer (Beta, Gamma, Student-t credible intervals, ...) can
// compute exact CDFs and quantiles without external dependencies.
#pragma once

#include <cstddef>

namespace sysuq::prob {

/// Natural log of the gamma function, ln Γ(x), for x > 0.
[[nodiscard]] double log_gamma(double x);

/// Natural log of the beta function, ln B(a, b), for a, b > 0.
[[nodiscard]] double log_beta(double a, double b);

/// Regularized lower incomplete gamma function P(a, x) = γ(a,x)/Γ(a).
/// Domain: a > 0, x >= 0. Monotone in x from 0 to 1.
[[nodiscard]] double reg_lower_gamma(double a, double x);

/// Regularized upper incomplete gamma function Q(a, x) = 1 - P(a, x).
[[nodiscard]] double reg_upper_gamma(double a, double x);

/// Regularized incomplete beta function I_x(a, b) for 0 <= x <= 1,
/// a, b > 0. This is the CDF of the Beta(a, b) distribution.
[[nodiscard]] double reg_inc_beta(double a, double b, double x);

/// Inverse of the regularized incomplete beta function: returns x such
/// that I_x(a, b) = p. Used for Beta quantiles / credible intervals.
[[nodiscard]] double inv_reg_inc_beta(double a, double b, double p);

/// Standard normal cumulative distribution function Φ(x).
// sysuq-lint-allow(contract-coverage): total over the reals
[[nodiscard]] double std_normal_cdf(double x);

/// Inverse standard normal CDF (probit), Acklam's rational approximation
/// refined by one Halley step; |error| < 1e-12 over (0, 1).
[[nodiscard]] double std_normal_quantile(double p);

/// Error function erf(x) (wraps std::erf; kept for interface symmetry).
// sysuq-lint-allow(contract-coverage): total over the reals
[[nodiscard]] double erf(double x);

/// ln(n!) using log_gamma.
[[nodiscard]] double log_factorial(std::size_t n);

/// ln C(n, k) — log binomial coefficient.
[[nodiscard]] double log_binomial_coeff(std::size_t n, std::size_t k);

/// Numerically stable log(exp(a) + exp(b)).
[[nodiscard]] double log_add_exp(double a, double b);

}  // namespace sysuq::prob
