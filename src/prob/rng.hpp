// Deterministic, splittable random number generation.
//
// All stochastic components of the library draw through `Rng` so that every
// experiment is reproducible from a single seed. `Rng::split` derives an
// independent stream, which lets parallel or modular components (e.g. each
// sensor of a redundant perception architecture) own their own stream
// without cross-contaminating draw sequences when one component changes.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace sysuq::prob {

/// Seedable pseudo-random generator wrapping a 64-bit Mersenne Twister
/// with SplitMix64-based seeding and stream derivation.
class Rng {
 public:
  /// Constructs a generator from a 64-bit seed.
  // sysuq-lint-allow(contract-coverage): every 64-bit seed is valid
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform();

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi);

  /// Uniform integer in [0, n) — n must be > 0.
  [[nodiscard]] std::size_t uniform_index(std::size_t n);

  /// Standard normal draw (Box–Muller-free: std::normal_distribution).
  [[nodiscard]] double gaussian();

  /// Normal draw with given mean and standard deviation (sigma >= 0).
  [[nodiscard]] double gaussian(double mean, double sigma);

  /// Exponential draw with given rate (lambda > 0).
  [[nodiscard]] double exponential(double rate);

  /// Gamma draw with given shape and scale (both > 0).
  [[nodiscard]] double gamma(double shape, double scale);

  /// Bernoulli draw with success probability p in [0, 1].
  [[nodiscard]] bool bernoulli(double p);

  /// Draws an index according to (non-negative, not necessarily
  /// normalized) weights. Throws if all weights are zero.
  [[nodiscard]] std::size_t categorical(const std::vector<double>& weights);

  /// Derives an independent child stream. Children with distinct salts are
  /// decorrelated from each other and from the parent.
  [[nodiscard]] Rng split(std::uint64_t salt);

  /// Raw 64 bits (for hashing / seeding downstream components).
  [[nodiscard]] std::uint64_t next_u64();

  /// The seed this generator was constructed with.
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

 private:
  std::uint64_t seed_;
  std::mt19937_64 engine_;
};

/// SplitMix64 step — a high-quality 64-bit mixer, used for seed derivation.
// sysuq-lint-allow(contract-coverage): pure bit mixer, total over uint64 state
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state);

}  // namespace sysuq::prob
