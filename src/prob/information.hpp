// Information-theoretic measures.
//
// The paper formalizes *epistemic* uncertainty and the "surprise factor"
// separating epistemic from ontological uncertainty via conditional
// entropy between the system and its model (Secs. III.B, III.C, citing
// Shannon). This header provides those measures on discrete distributions
// and joint tables.
#pragma once

#include <cstddef>
#include <vector>

#include "prob/discrete.hpp"

namespace sysuq::prob {

/// A joint probability table over two discrete variables X (rows) and Y
/// (columns). Invariant: entries non-negative, total sums to 1.
class JointTable {
 public:
  /// Constructs from a row-major table; validates normalization.
  JointTable(std::vector<std::vector<double>> table);

  /// Builds the joint P(X, Y) = P(X) * P(Y|X) from a marginal and a
  /// conditional given as one categorical row per x.
  [[nodiscard]] static JointTable from_conditional(
      const Categorical& px, const std::vector<Categorical>& py_given_x);

  /// Number of X states.
  [[nodiscard]] std::size_t rows() const { return t_.size(); }
  /// Number of Y states.
  [[nodiscard]] std::size_t cols() const { return t_.empty() ? 0 : t_[0].size(); }
  /// P(X = x, Y = y).
  [[nodiscard]] double p(std::size_t x, std::size_t y) const;
  /// Marginal distribution of X.
  [[nodiscard]] Categorical marginal_x() const;
  /// Marginal distribution of Y.
  [[nodiscard]] Categorical marginal_y() const;
  /// Conditional P(Y | X = x); throws if P(X = x) = 0.
  [[nodiscard]] Categorical conditional_y_given_x(std::size_t x) const;
  /// Conditional P(X | Y = y); throws if P(Y = y) = 0.
  [[nodiscard]] Categorical conditional_x_given_y(std::size_t y) const;

 private:
  std::vector<std::vector<double>> t_;
};

/// Shannon entropy H(P) in nats.
[[nodiscard]] double entropy(const Categorical& p);

/// Cross entropy H(P, Q) = -sum_i p_i log q_i; +inf if Q misses support.
[[nodiscard]] double cross_entropy(const Categorical& p, const Categorical& q);

/// Kullback-Leibler divergence D(P || Q); +inf if Q misses P's support.
[[nodiscard]] double kl_divergence(const Categorical& p, const Categorical& q);

/// Jensen-Shannon divergence (symmetric, bounded by log 2).
[[nodiscard]] double js_divergence(const Categorical& p, const Categorical& q);

/// Joint entropy H(X, Y).
[[nodiscard]] double joint_entropy(const JointTable& joint);

/// Conditional entropy H(Y | X) — the paper's formal "surprise factor":
/// the residual uncertainty about the system (Y) given the model's
/// prediction (X).
[[nodiscard]] double conditional_entropy_y_given_x(const JointTable& joint);

/// Conditional entropy H(X | Y).
[[nodiscard]] double conditional_entropy_x_given_y(const JointTable& joint);

/// Mutual information I(X; Y) = H(Y) - H(Y|X) >= 0.
[[nodiscard]] double mutual_information(const JointTable& joint);

/// Expected entropy of a mixture's components: sum_k w_k H(P_k). Together
/// with the entropy of the mixture mean this decomposes predictive
/// uncertainty: total = aleatory + epistemic, where
///   aleatory  = E_k[H(P_k)]              (expected data uncertainty)
///   epistemic = H(E_k[P_k]) - E_k[H(P_k)] (mutual information between
///                the prediction and the model index — disagreement).
/// This is the standard ensemble decomposition the paper's cited
/// uncertainty-aware deep learning methods use (Gal & Ghahramani; Kendall
/// & Gal).
struct EntropyDecomposition {
  double total;      ///< H of the mixture-averaged distribution
  double aleatory;   ///< expected member entropy
  double epistemic;  ///< total - aleatory (= Jensen gap, >= 0)
};

/// Decomposes the predictive entropy of an equally/explicitly weighted
/// ensemble of categoricals. All members must share the category count.
[[nodiscard]] EntropyDecomposition decompose_ensemble_entropy(
    const std::vector<Categorical>& members,
    const std::vector<double>* weights = nullptr);

}  // namespace sysuq::prob
