// Continuous univariate distributions plus the Dirichlet.
//
// These are the aleatory building blocks of the library. Each distribution
// is a small value type with exact pdf/cdf/quantile where closed forms (or
// the special-function layer) permit, so that credible intervals — the
// paper's measure of *epistemic* uncertainty shrinking with observations
// (Sec. III.B) — can be computed without Monte Carlo error.
#pragma once

#include <memory>
#include <vector>

#include "prob/rng.hpp"

namespace sysuq::prob {

/// Interface for a continuous univariate distribution.
class ContinuousDistribution {
 public:
  virtual ~ContinuousDistribution() = default;

  /// Probability density at x.
  [[nodiscard]] virtual double pdf(double x) const = 0;
  /// Natural log of the density at x (may be -inf outside support).
  [[nodiscard]] virtual double log_pdf(double x) const = 0;
  /// Cumulative distribution function P(X <= x).
  [[nodiscard]] virtual double cdf(double x) const = 0;
  /// Quantile function (inverse CDF) for p in (0, 1).
  [[nodiscard]] virtual double quantile(double p) const = 0;
  /// Expected value.
  [[nodiscard]] virtual double mean() const = 0;
  /// Variance.
  [[nodiscard]] virtual double variance() const = 0;
  /// Draws one sample.
  [[nodiscard]] virtual double sample(Rng& rng) const = 0;

  /// Differential entropy in nats; default integrates numerically is not
  /// provided — concrete types supply closed forms.
  [[nodiscard]] virtual double entropy() const = 0;

  /// Central (1 - alpha) interval [quantile(alpha/2), quantile(1-alpha/2)].
  [[nodiscard]] std::pair<double, double> central_interval(double alpha) const;
};

/// Uniform(lo, hi) distribution.
class Uniform final : public ContinuousDistribution {
 public:
  Uniform(double lo, double hi);
  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double log_pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double variance() const override;
  [[nodiscard]] double sample(Rng& rng) const override;
  [[nodiscard]] double entropy() const override;
  [[nodiscard]] double lo() const { return lo_; }
  [[nodiscard]] double hi() const { return hi_; }

 private:
  double lo_, hi_;
};

/// Normal(mean, sigma) distribution.
class Normal final : public ContinuousDistribution {
 public:
  Normal(double mean, double sigma);
  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double log_pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double mean() const override { return mu_; }
  [[nodiscard]] double variance() const override { return sigma_ * sigma_; }
  [[nodiscard]] double sample(Rng& rng) const override;
  [[nodiscard]] double entropy() const override;
  [[nodiscard]] double sigma() const { return sigma_; }

 private:
  double mu_, sigma_;
};

/// Exponential(rate) distribution on [0, inf).
class Exponential final : public ContinuousDistribution {
 public:
  explicit Exponential(double rate);
  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double log_pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double mean() const override { return 1.0 / rate_; }
  [[nodiscard]] double variance() const override { return 1.0 / (rate_ * rate_); }
  [[nodiscard]] double sample(Rng& rng) const override;
  [[nodiscard]] double entropy() const override;
  [[nodiscard]] double rate() const { return rate_; }

 private:
  double rate_;
};

/// Triangular(lo, mode, hi) distribution — the membership shape used by
/// fuzzy fault-tree probabilities (Tanaka et al.) when read as a density.
class Triangular final : public ContinuousDistribution {
 public:
  Triangular(double lo, double mode, double hi);
  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double log_pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double variance() const override;
  [[nodiscard]] double sample(Rng& rng) const override;
  [[nodiscard]] double entropy() const override;
  [[nodiscard]] double lo() const { return lo_; }
  [[nodiscard]] double mode() const { return mode_; }
  [[nodiscard]] double hi() const { return hi_; }

 private:
  double lo_, mode_, hi_;
};

/// Beta(a, b) distribution on [0, 1] — the conjugate posterior of a
/// Bernoulli probability; its credible-interval width is the library's
/// canonical scalar measure of epistemic uncertainty about a probability.
class Beta final : public ContinuousDistribution {
 public:
  Beta(double a, double b);
  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double log_pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double mean() const override { return a_ / (a_ + b_); }
  [[nodiscard]] double variance() const override;
  [[nodiscard]] double sample(Rng& rng) const override;
  [[nodiscard]] double entropy() const override;
  [[nodiscard]] double alpha() const { return a_; }
  [[nodiscard]] double beta() const { return b_; }

  /// Bayesian update: returns Beta(a + successes, b + failures).
  [[nodiscard]] Beta updated(std::size_t successes, std::size_t failures) const;

 private:
  double a_, b_;
};

/// Gamma(shape, scale) distribution on [0, inf).
class Gamma final : public ContinuousDistribution {
 public:
  Gamma(double shape, double scale);
  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double log_pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double mean() const override { return shape_ * scale_; }
  [[nodiscard]] double variance() const override { return shape_ * scale_ * scale_; }
  [[nodiscard]] double sample(Rng& rng) const override;
  [[nodiscard]] double entropy() const override;
  [[nodiscard]] double shape() const { return shape_; }
  [[nodiscard]] double scale() const { return scale_; }

 private:
  double shape_, scale_;
};

/// Weibull(shape k, scale lambda) on [0, inf) — the standard lifetime
/// distribution of reliability engineering: k < 1 infant mortality,
/// k = 1 exponential (memoryless), k > 1 wear-out.
class Weibull final : public ContinuousDistribution {
 public:
  Weibull(double shape, double scale);
  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double log_pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double variance() const override;
  [[nodiscard]] double sample(Rng& rng) const override;
  [[nodiscard]] double entropy() const override;
  [[nodiscard]] double shape() const { return k_; }
  [[nodiscard]] double scale() const { return lambda_; }
  /// Hazard rate h(t) = pdf / (1 - cdf): increasing iff k > 1.
  [[nodiscard]] double hazard(double t) const;

 private:
  double k_, lambda_;
};

/// LogNormal(mu, sigma): exp(N(mu, sigma^2)) — multiplicative error
/// accumulation; the conventional spread model for elicited failure
/// rates in probabilistic risk assessment.
class LogNormal final : public ContinuousDistribution {
 public:
  LogNormal(double mu, double sigma);
  [[nodiscard]] double pdf(double x) const override;
  [[nodiscard]] double log_pdf(double x) const override;
  [[nodiscard]] double cdf(double x) const override;
  [[nodiscard]] double quantile(double p) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double variance() const override;
  [[nodiscard]] double sample(Rng& rng) const override;
  [[nodiscard]] double entropy() const override;
  [[nodiscard]] double median() const;
  /// The multiplicative "error factor" EF = quantile(.95) / median used
  /// by PRA handbooks to parameterize rate uncertainty.
  [[nodiscard]] double error_factor() const;

 private:
  double mu_, sigma_;
};

/// Dirichlet(alpha_1..alpha_k): the conjugate posterior over a categorical
/// distribution's parameter vector. Used to quantify epistemic uncertainty
/// about CPT rows (Sec. V: "with each new observation ... epistemic
/// uncertainty decreases").
class Dirichlet {
 public:
  explicit Dirichlet(std::vector<double> alpha);

  /// Number of categories.
  [[nodiscard]] std::size_t dimension() const { return alpha_.size(); }
  /// Concentration parameters.
  [[nodiscard]] const std::vector<double>& alpha() const { return alpha_; }
  /// Posterior mean vector (normalized alpha).
  [[nodiscard]] std::vector<double> mean() const;
  /// Marginal variance of component i.
  [[nodiscard]] double variance(std::size_t i) const;
  /// The marginal of component i is Beta(alpha_i, alpha_0 - alpha_i).
  [[nodiscard]] Beta marginal(std::size_t i) const;
  /// Log density at a point on the simplex.
  [[nodiscard]] double log_pdf(const std::vector<double>& x) const;
  /// Draws a probability vector.
  [[nodiscard]] std::vector<double> sample(Rng& rng) const;
  /// Bayesian update with observed category counts.
  [[nodiscard]] Dirichlet updated(const std::vector<std::size_t>& counts) const;
  /// Sum of concentration parameters (prior + observed pseudo-counts).
  [[nodiscard]] double total_concentration() const;
  /// Mean width of the per-component central 95% credible intervals — the
  /// library's scalar epistemic-uncertainty summary for a CPT row.
  [[nodiscard]] double mean_credible_width(double alpha_level = 0.05) const;

 private:
  std::vector<double> alpha_;
};

}  // namespace sysuq::prob
