#include "prob/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sysuq::prob {

// ------------------------------------------------------------ Histogram1D

Histogram1D::Histogram1D(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (!(lo < hi)) throw std::invalid_argument("Histogram1D: lo >= hi");
  if (bins == 0) throw std::invalid_argument("Histogram1D: zero bins");
}

void Histogram1D::add(double x) {
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const auto i = static_cast<std::size_t>((x - lo_) / (hi_ - lo_) *
                                          static_cast<double>(counts_.size()));
  counts_[std::min(i, counts_.size() - 1)] += 1;
  ++total_;
}

std::size_t Histogram1D::count(std::size_t i) const {
  if (i >= counts_.size()) throw std::out_of_range("Histogram1D::count");
  return counts_[i];
}

double Histogram1D::bin_center(std::size_t i) const {
  if (i >= counts_.size()) throw std::out_of_range("Histogram1D::bin_center");
  return lo_ + (static_cast<double>(i) + 0.5) * bin_width();
}

double Histogram1D::bin_width() const {
  return (hi_ - lo_) / static_cast<double>(counts_.size());
}

double Histogram1D::probability(std::size_t i) const {
  if (total_ == 0) throw std::logic_error("Histogram1D::probability: empty");
  return static_cast<double>(count(i)) / static_cast<double>(total_);
}

double Histogram1D::density(std::size_t i) const {
  return probability(i) / bin_width();
}

Categorical Histogram1D::distribution() const {
  if (total_ == 0) throw std::logic_error("Histogram1D::distribution: empty");
  std::vector<double> w(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i)
    w[i] = static_cast<double>(counts_[i]);
  return Categorical::normalized(std::move(w));
}

// ------------------------------------------------------------ Histogram2D

Histogram2D::Histogram2D(double xlo, double xhi, std::size_t xbins, double ylo,
                         double yhi, std::size_t ybins)
    : xlo_(xlo),
      xhi_(xhi),
      ylo_(ylo),
      yhi_(yhi),
      xbins_(xbins),
      ybins_(ybins),
      counts_(xbins * ybins, 0) {
  if (!(xlo < xhi) || !(ylo < yhi))
    throw std::invalid_argument("Histogram2D: degenerate range");
  if (xbins == 0 || ybins == 0)
    throw std::invalid_argument("Histogram2D: zero bins");
}

std::size_t Histogram2D::index(std::size_t ix, std::size_t iy) const {
  return ix * ybins_ + iy;
}

void Histogram2D::add(double x, double y) {
  if (x < xlo_ || x >= xhi_ || y < ylo_ || y >= yhi_) {
    ++outside_;
    return;
  }
  auto ix = static_cast<std::size_t>((x - xlo_) / (xhi_ - xlo_) *
                                     static_cast<double>(xbins_));
  auto iy = static_cast<std::size_t>((y - ylo_) / (yhi_ - ylo_) *
                                     static_cast<double>(ybins_));
  ix = std::min(ix, xbins_ - 1);
  iy = std::min(iy, ybins_ - 1);
  counts_[index(ix, iy)] += 1;
  ++total_;
}

std::size_t Histogram2D::count(std::size_t ix, std::size_t iy) const {
  if (ix >= xbins_ || iy >= ybins_)
    throw std::out_of_range("Histogram2D::count");
  return counts_[index(ix, iy)];
}

double Histogram2D::probability(std::size_t ix, std::size_t iy) const {
  if (total_ == 0) throw std::logic_error("Histogram2D::probability: empty");
  return static_cast<double>(count(ix, iy)) / static_cast<double>(total_);
}

double Histogram2D::frame_probability(double x0, double x1, double y0,
                                      double y1) const {
  if (total_ == 0) throw std::logic_error("Histogram2D::frame_probability: empty");
  if (!(x0 < x1) || !(y0 < y1))
    throw std::invalid_argument("Histogram2D::frame_probability: bad frame");
  const double xw = (xhi_ - xlo_) / static_cast<double>(xbins_);
  const double yw = (yhi_ - ylo_) / static_cast<double>(ybins_);
  double prob = 0.0;
  for (std::size_t ix = 0; ix < xbins_; ++ix) {
    const double cx0 = xlo_ + static_cast<double>(ix) * xw;
    const double cx1 = cx0 + xw;
    const double ox = std::max(0.0, std::min(x1, cx1) - std::max(x0, cx0));
    if (ox <= 0.0) continue;
    for (std::size_t iy = 0; iy < ybins_; ++iy) {
      const double cy0 = ylo_ + static_cast<double>(iy) * yw;
      const double cy1 = cy0 + yw;
      const double oy = std::max(0.0, std::min(y1, cy1) - std::max(y0, cy0));
      if (oy <= 0.0) continue;
      const double frac = (ox / xw) * (oy / yw);
      prob += frac * static_cast<double>(counts_[index(ix, iy)]) /
              static_cast<double>(total_);
    }
  }
  return prob;
}

Categorical Histogram2D::distribution() const {
  if (total_ == 0) throw std::logic_error("Histogram2D::distribution: empty");
  std::vector<double> w(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i)
    w[i] = static_cast<double>(counts_[i]);
  return Categorical::normalized(std::move(w));
}

double Histogram2D::total_variation(const Histogram2D& other) const {
  if (other.xbins_ != xbins_ || other.ybins_ != ybins_)
    throw std::invalid_argument("Histogram2D::total_variation: shape mismatch");
  if (total_ == 0 || other.total_ == 0)
    throw std::logic_error("Histogram2D::total_variation: empty histogram");
  double tv = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double pa =
        static_cast<double>(counts_[i]) / static_cast<double>(total_);
    const double pb =
        static_cast<double>(other.counts_[i]) / static_cast<double>(other.total_);
    tv += std::fabs(pa - pb);
  }
  return 0.5 * tv;
}

}  // namespace sysuq::prob
