// Polynomial chaos expansions (PCE): spectral propagation of input
// uncertainty through deterministic models.
//
// This is the workhorse of classical UQ toolchains (chaospy, UQLab, ...)
// and the library's instrument for the paper's Sec. II/III story: when a
// *deterministic* formal system (model A) has uncertain parameters, the
// induced output distribution — and its exact variance decomposition
// (Sobol indices) — quantifies how parameter-level epistemic uncertainty
// surfaces at the system level.
//
// Supported germ distributions: standard Gaussian (probabilists' Hermite
// basis) and Uniform[-1, 1] (Legendre basis). Multidimensional expansions
// use tensorized quadrature with total-degree truncation.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace sysuq::prob {

/// Orthogonal polynomial family (and the germ distribution it matches).
enum class PolyBasis {
  kHermite,   ///< probabilists' Hermite; germ ~ N(0, 1)
  kLegendre,  ///< Legendre; germ ~ Uniform[-1, 1]
};

/// Evaluates basis polynomial k at x (He_k or P_k).
// sysuq-lint-allow(contract-coverage): total over the basis enum and order
[[nodiscard]] double basis_eval(PolyBasis basis, std::size_t k, double x);

/// Squared norm E[psi_k(X)^2] under the germ distribution.
// sysuq-lint-allow(contract-coverage): total over the basis enum and order
[[nodiscard]] double basis_norm2(PolyBasis basis, std::size_t k);

/// Gauss quadrature rule with n nodes for the germ's probability measure:
/// sum_i w_i f(x_i) ~ E[f(X)], exact for polynomials of degree <= 2n-1.
struct QuadratureRule {
  std::vector<double> nodes;
  std::vector<double> weights;
};
[[nodiscard]] QuadratureRule gauss_rule(PolyBasis basis, std::size_t n);

/// One-dimensional PCE of a scalar function of one germ variable.
class PolynomialChaos1D {
 public:
  /// Projects f onto the basis up to `order`, using a quadrature with
  /// order+1+extra nodes.
  PolynomialChaos1D(PolyBasis basis, std::size_t order,
                    const std::function<double(double)>& f,
                    std::size_t extra_nodes = 4);

  [[nodiscard]] std::size_t order() const { return coeff_.size() - 1; }
  /// Expansion coefficient c_k.
  [[nodiscard]] double coefficient(std::size_t k) const;
  /// Surrogate evaluation at a germ value.
  [[nodiscard]] double evaluate(double x) const;
  /// E[f(X)] = c_0.
  [[nodiscard]] double mean() const { return coeff_[0]; }
  /// Var[f(X)] = sum_{k >= 1} c_k^2 ||psi_k||^2.
  [[nodiscard]] double variance() const;

 private:
  PolyBasis basis_;
  std::vector<double> coeff_;
};

/// Multidimensional PCE with total-degree truncation over independent
/// identically distributed germ variables.
class PolynomialChaosND {
 public:
  /// Projects f : R^dim -> R onto all multi-indices with total degree <=
  /// `order`, using a tensorized (order+1+extra)-point rule per axis.
  PolynomialChaosND(PolyBasis basis, std::size_t dim, std::size_t order,
                    const std::function<double(const std::vector<double>&)>& f,
                    std::size_t extra_nodes = 2);

  [[nodiscard]] std::size_t dimension() const { return dim_; }
  [[nodiscard]] std::size_t term_count() const { return indices_.size(); }
  /// Multi-index of term t (one degree per input dimension).
  [[nodiscard]] const std::vector<std::size_t>& multi_index(std::size_t t) const;
  [[nodiscard]] double coefficient(std::size_t t) const;
  [[nodiscard]] double evaluate(const std::vector<double>& x) const;
  [[nodiscard]] double mean() const { return coeff_[0]; }
  [[nodiscard]] double variance() const;

  /// First-order Sobol index of input i: the fraction of output variance
  /// carried by terms involving *only* input i.
  [[nodiscard]] double sobol_first(std::size_t i) const;

  /// Total Sobol index of input i: fraction of variance carried by all
  /// terms involving input i (including interactions).
  [[nodiscard]] double sobol_total(std::size_t i) const;

 private:
  PolyBasis basis_;
  std::size_t dim_;
  std::vector<std::vector<std::size_t>> indices_;
  std::vector<double> coeff_;

  [[nodiscard]] double term_norm2(std::size_t t) const;
};

}  // namespace sysuq::prob
