// Sensor / classifier models for the perception chain.
//
// A sensor outputs one of (known classes..., "none"); its behaviour on
// each true-world class is a confusion row — exactly the abstraction of
// the paper's Table I. Novel (unmodeled) classes get their own row, which
// the *developer's* model does not know (the published Table I encodes it
// as the `unknown` ground-truth state only after the domain analysis has
// been extended).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "perception/world.hpp"
#include "prob/discrete.hpp"
#include "prob/information.hpp"

namespace sysuq::perception {

/// Output code of a sensor: 0..k-1 = class labels, k = "none" (no
/// detection). The epistemic "cannot decide" output of Table I is modeled
/// by the uncertainty-aware classifier layer, not the raw sensor.
struct SensorOutput {
  std::size_t label;  ///< 0..k-1 class, or k for none
  bool is_none;       ///< convenience flag: label == class_count
};

/// A confusion-matrix sensor over a developer world model of k classes.
class ConfusionSensor {
 public:
  /// `rows` — one categorical over (k classes + none) per *true-world*
  /// class the sensor may ever see: first the k modeled classes, then one
  /// row per novel class (how the sensor responds to objects outside its
  /// training distribution).
  ConfusionSensor(std::size_t modeled_classes,
                  std::vector<prob::Categorical> rows);

  /// A well-behaved sensor: diagonal accuracy `acc` on modeled classes
  /// (residual split between other classes and none), and novel classes
  /// responding with `novel_none` mass on none, remainder spread evenly
  /// over the modeled classes (hallucinated labels).
  [[nodiscard]] static ConfusionSensor make_default(std::size_t modeled_classes,
                                                    std::size_t novel_classes,
                                                    double acc,
                                                    double novel_none);

  [[nodiscard]] std::size_t modeled_classes() const { return k_; }
  [[nodiscard]] std::size_t output_cardinality() const { return k_ + 1; }
  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }
  [[nodiscard]] const prob::Categorical& row(ClassId true_class) const;

  /// Hard-label classification of one encounter.
  [[nodiscard]] SensorOutput classify(ClassId true_class, prob::Rng& rng) const;

  /// The full output distribution for a true class (soft prediction).
  [[nodiscard]] const prob::Categorical& predictive(ClassId true_class) const {
    return row(true_class);
  }

 private:
  std::size_t k_;
  std::vector<prob::Categorical> rows_;
};

/// An ensemble of perturbed sensors modelling *epistemic* uncertainty
/// about the classifier's behaviour (the deep-ensemble / MC-dropout
/// abstraction of the paper's cited uncertainty-aware ML [5], [6]).
class EnsembleClassifier {
 public:
  /// `members` — sensors with identical shape but varied confusion rows.
  explicit EnsembleClassifier(std::vector<ConfusionSensor> members);

  /// Builds an ensemble of `n` members around `nominal` by Dirichlet-
  /// resampling every confusion row with concentration `concentration`
  /// (higher = members agree more = less epistemic uncertainty).
  [[nodiscard]] static EnsembleClassifier perturbed(const ConfusionSensor& nominal,
                                                    std::size_t n,
                                                    double concentration,
                                                    prob::Rng& rng);

  [[nodiscard]] std::size_t member_count() const { return members_.size(); }
  [[nodiscard]] const ConfusionSensor& member(std::size_t i) const;

  /// Per-member predictive distributions for a true class.
  [[nodiscard]] std::vector<prob::Categorical> member_predictives(
      ClassId true_class) const;

  /// Entropy decomposition of the ensemble prediction for a true class:
  /// total = aleatory (mean member entropy) + epistemic (disagreement).
  [[nodiscard]] prob::EntropyDecomposition decompose(ClassId true_class) const;

 private:
  std::vector<ConfusionSensor> members_;
};

}  // namespace sysuq::perception
