#include "perception/sensor.hpp"

#include <stdexcept>

#include "prob/distribution.hpp"
#include "core/contracts.hpp"

namespace sysuq::perception {

ConfusionSensor::ConfusionSensor(std::size_t modeled_classes,
                                 std::vector<prob::Categorical> rows)
    : k_(modeled_classes), rows_(std::move(rows)) {
  SYSUQ_EXPECT(k_ != 0, "ConfusionSensor: zero classes");
  SYSUQ_EXPECT(rows_.size() >= k_,
               "ConfusionSensor: need at least one row per modeled class");
  for (const auto& r : rows_) {
    SYSUQ_EXPECT(r.size() == k_ + 1,
                 "ConfusionSensor: rows must cover classes + none");
  }
}

ConfusionSensor ConfusionSensor::make_default(std::size_t modeled_classes,
                                              std::size_t novel_classes,
                                              double acc, double novel_none) {
  SYSUQ_EXPECT(contracts::is_probability(acc) &&
                   contracts::is_probability(novel_none),
               "ConfusionSensor::make_default: bad rates");
  const std::size_t k = modeled_classes;
  std::vector<prob::Categorical> rows;
  rows.reserve(k + novel_classes);
  for (std::size_t c = 0; c < k; ++c) {
    std::vector<double> row(k + 1, 0.0);
    row[c] = acc;
    const double rest = 1.0 - acc;
    // Half of the residual as label confusion, half as missed detection.
    const double confuse = (k > 1) ? rest * 0.5 / static_cast<double>(k - 1) : 0.0;
    for (std::size_t o = 0; o < k; ++o) {
      if (o != c) row[o] = confuse;
    }
    row[k] = (k > 1) ? rest * 0.5 : rest;
    rows.push_back(prob::Categorical::normalized(std::move(row)));
  }
  for (std::size_t nv = 0; nv < novel_classes; ++nv) {
    std::vector<double> row(k + 1, 0.0);
    row[k] = novel_none;
    const double spread = (1.0 - novel_none) / static_cast<double>(k);
    for (std::size_t o = 0; o < k; ++o) row[o] = spread;
    rows.push_back(prob::Categorical::normalized(std::move(row)));
  }
  return ConfusionSensor(k, std::move(rows));
}

const prob::Categorical& ConfusionSensor::row(ClassId true_class) const {
  if (true_class >= rows_.size())
    throw std::out_of_range("ConfusionSensor::row: unseen true class");
  return rows_[true_class];
}

SensorOutput ConfusionSensor::classify(ClassId true_class, prob::Rng& rng) const {
  const std::size_t label = row(true_class).sample(rng);
  return {label, label == k_};
}

EnsembleClassifier::EnsembleClassifier(std::vector<ConfusionSensor> members)
    : members_(std::move(members)) {
  SYSUQ_EXPECT(!members_.empty(), "EnsembleClassifier: empty ensemble");
  for (const auto& m : members_) {
    SYSUQ_EXPECT(m.modeled_classes() == members_[0].modeled_classes() &&
                     m.row_count() == members_[0].row_count(),
                 "EnsembleClassifier: member shape mismatch");
  }
}

EnsembleClassifier EnsembleClassifier::perturbed(const ConfusionSensor& nominal,
                                                 std::size_t n,
                                                 double concentration,
                                                 prob::Rng& rng) {
  SYSUQ_EXPECT(n != 0, "EnsembleClassifier: n == 0");
  SYSUQ_EXPECT(concentration > 0.0, "EnsembleClassifier: concentration <= 0");
  std::vector<ConfusionSensor> members;
  members.reserve(n);
  for (std::size_t m = 0; m < n; ++m) {
    std::vector<prob::Categorical> rows;
    rows.reserve(nominal.row_count());
    for (std::size_t r = 0; r < nominal.row_count(); ++r) {
      const auto& base = nominal.row(r);
      std::vector<double> alpha(base.size());
      for (std::size_t i = 0; i < base.size(); ++i)
        alpha[i] = std::max(base.p(i) * concentration, 1e-3);
      rows.emplace_back(prob::Dirichlet(alpha).sample(rng));
    }
    members.emplace_back(nominal.modeled_classes(), std::move(rows));
  }
  return EnsembleClassifier(std::move(members));
}

const ConfusionSensor& EnsembleClassifier::member(std::size_t i) const {
  if (i >= members_.size()) throw std::out_of_range("EnsembleClassifier::member");
  return members_[i];
}

std::vector<prob::Categorical> EnsembleClassifier::member_predictives(
    ClassId true_class) const {
  std::vector<prob::Categorical> out;
  out.reserve(members_.size());
  for (const auto& m : members_) out.push_back(m.predictive(true_class));
  return out;
}

prob::EntropyDecomposition EnsembleClassifier::decompose(
    ClassId true_class) const {
  return prob::decompose_ensemble_entropy(member_predictives(true_class));
}

}  // namespace sysuq::perception
