// A Bayesian feature-space classifier with exact epistemic uncertainty —
// the library's executable stand-in for "machine learning with
// uncertainty estimations" (paper refs [5], [6]; uncertainty tolerance).
//
// Model: each class emits 2-D features from an isotropic Gaussian with
// known noise sigma and *unknown mean*; the mean carries a conjugate
// Gaussian prior, so the posterior and the predictive distribution are
// closed-form. Epistemic uncertainty = posterior variance of the means
// (shrinks ~1/N); aleatory = the irreducible feature noise; ontological =
// inputs far from every class's predictive support (OOD score).
#pragma once

#include <cstddef>
#include <vector>

#include "prob/discrete.hpp"
#include "prob/information.hpp"
#include "prob/rng.hpp"

namespace sysuq::perception {

/// A 2-D feature point.
struct Feature {
  double x = 0.0;
  double y = 0.0;
};

/// Per-class generative truth used by the scene simulator.
struct ClassDistribution {
  Feature mean;
  double sigma = 1.0;  ///< isotropic feature noise
};

/// Draws a feature for a class.
[[nodiscard]] Feature sample_feature(const ClassDistribution& cls, prob::Rng& rng);

/// The Bayesian classifier.
class BayesClassifier {
 public:
  /// `k` classes; features assumed to have known noise `sigma`; the
  /// unknown class means carry independent N(0, prior_tau^2 I) priors.
  BayesClassifier(std::size_t k, double sigma, double prior_tau,
                  prob::Categorical class_priors);

  /// Learns from one labelled example.
  void train(std::size_t label, const Feature& f);

  [[nodiscard]] std::size_t class_count() const { return k_; }
  [[nodiscard]] std::size_t training_count(std::size_t label) const;

  /// Posterior mean of class `label`'s feature mean.
  [[nodiscard]] Feature posterior_mean(std::size_t label) const;

  /// Posterior standard deviation of the mean (per axis): the class's
  /// residual epistemic uncertainty. Decays ~ 1/sqrt(N).
  [[nodiscard]] double posterior_tau(std::size_t label) const;

  /// Posterior over classes for a feature (closed-form predictive
  /// densities x class priors).
  [[nodiscard]] prob::Categorical posterior(const Feature& f) const;

  /// Ensemble decomposition at a feature: draws `members` class-mean
  /// samples from the posteriors, classifies with each — total entropy =
  /// aleatory (mean member entropy) + epistemic (disagreement).
  [[nodiscard]] prob::EntropyDecomposition decompose(const Feature& f,
                                                     std::size_t members,
                                                     prob::Rng& rng) const;

  /// Out-of-distribution score: the smallest squared Mahalanobis distance
  /// (per predictive variance) to any class. Large = no class explains
  /// the input — the ontological alarm.
  [[nodiscard]] double ood_score(const Feature& f) const;

  /// Classify with abstention: returns the MAP class, or `class_count()`
  /// ("none/unknown") when the OOD score exceeds `ood_threshold` or the
  /// MAP posterior falls below `min_confidence`.
  [[nodiscard]] std::size_t classify(const Feature& f, double ood_threshold,
                                     double min_confidence) const;

 private:
  std::size_t k_;
  double sigma_;
  double prior_tau_;
  prob::Categorical priors_;
  // Per class: sufficient statistics (count, sum of features).
  std::vector<std::size_t> n_;
  std::vector<Feature> sum_;

  [[nodiscard]] double predictive_var(std::size_t label) const;
  [[nodiscard]] double log_predictive(std::size_t label, const Feature& f) const;
};

}  // namespace sysuq::perception
