#include "perception/table1.hpp"

#include <stdexcept>

namespace sysuq::perception {

prob::Categorical table1_unknown_row(Table1Repair repair) {
  switch (repair) {
    case Table1Repair::kDeficitToNone:
      return prob::Categorical({0.0, 0.0, 0.2, 0.8});
    case Table1Repair::kDeficitToCarPed:
      return prob::Categorical({0.0, 0.0, 0.3, 0.7});
    case Table1Repair::kRenormalize:
      return prob::Categorical::normalized({0.0, 0.0, 0.2, 0.7});
  }
  throw std::invalid_argument("table1_unknown_row: bad repair policy");
}

bayesnet::BayesianNetwork table1_network(Table1Repair repair) {
  bayesnet::BayesianNetwork net;
  const auto gt =
      net.add_variable("ground_truth", {"car", "pedestrian", "unknown"});
  const auto pc = net.add_variable(
      "perception", {"car", "pedestrian", "car/pedestrian", "none"});
  net.set_cpt(gt, {}, {prob::Categorical({0.6, 0.3, 0.1})});
  net.set_cpt(pc, {gt},
              {prob::Categorical({0.9, 0.005, 0.05, 0.045}),
               prob::Categorical({0.005, 0.9, 0.05, 0.045}),
               table1_unknown_row(repair)});
  return net;
}

}  // namespace sysuq::perception
