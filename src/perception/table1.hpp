// The paper's worked example (Fig. 4 + Table I): the object-perception
// Bayesian network, reproduced exactly — including the published
// inconsistency.
//
// Table I as printed:
//
//   Ground Truth | car   pedestrian  car/pedestrian  none
//   car          | 0.9   0.005       0.05            0.045
//   pedestrian   | 0.005 0.9         0.05            0.045
//   unknown      | 0     0           0.2             0.7
//
// The `unknown` row sums to 0.9 — the published CPT is not a valid
// conditional distribution. The library refuses unnormalized CPT rows, so
// the builder takes an explicit repair policy (documented in DESIGN.md /
// EXPERIMENTS.md):
//
//   kDeficitToNone    — (0, 0, 0.2, 0.8): the missing 0.1 is assigned to
//                       `none`. Default: preserves the printed 0.2
//                       epistemic-indicator entry and matches the paper's
//                       narrative that unmodeled objects mostly yield no
//                       detection.
//   kDeficitToCarPed  — (0, 0, 0.3, 0.7): preserves the printed 0.7.
//   kRenormalize      — (0, 0, 2/9, 7/9): preserves the printed ratio.
#pragma once

#include "bayesnet/network.hpp"

namespace sysuq::perception {

/// How to repair the unnormalized `unknown` row of the published Table I.
enum class Table1Repair {
  kDeficitToNone,    ///< unknown -> (0, 0, 0.2, 0.8) [default]
  kDeficitToCarPed,  ///< unknown -> (0, 0, 0.3, 0.7)
  kRenormalize,      ///< unknown -> (0, 0, 2/9, 7/9)
};

/// State indices of the ground-truth node (root of Fig. 4).
enum GroundTruthState : std::size_t { kGtCar = 0, kGtPedestrian = 1, kGtUnknown = 2 };

/// State indices of the perception node (output of Fig. 4).
enum PerceptionState : std::size_t {
  kPercCar = 0,
  kPercPedestrian = 1,
  kPercCarPedestrian = 2,  ///< the epistemic "cannot decide" indicator state
  kPercNone = 3,
};

/// Builds the Fig. 4 network with Sec. V priors P(car)=0.6,
/// P(pedestrian)=0.3, P(unknown)=0.1 and the Table I CPT under the given
/// repair policy. Node ids: ground_truth = 0, perception = 1.
[[nodiscard]] bayesnet::BayesianNetwork table1_network(
    Table1Repair repair = Table1Repair::kDeficitToNone);

/// The repaired `unknown` CPT row for a given policy.
[[nodiscard]] prob::Categorical table1_unknown_row(Table1Repair repair);

}  // namespace sysuq::perception
