#include "perception/world.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>
#include "core/contracts.hpp"

namespace sysuq::perception {

WorldModel::WorldModel(std::vector<std::string> class_names,
                       std::vector<double> priors)
    : names_(std::move(class_names)),
      priors_(prob::Categorical::normalized(std::move(priors))) {
  SYSUQ_EXPECT(!names_.empty(), "WorldModel: no classes");
  SYSUQ_EXPECT(names_.size() == priors_.size(),
               "WorldModel: class/prior count mismatch");
  std::unordered_set<std::string> seen;
  for (const auto& n : names_) {
    if (n.empty() || !seen.insert(n).second)
      throw std::invalid_argument("WorldModel: bad class name '" + n + "'");
  }
}

const std::string& WorldModel::class_name(ClassId c) const {
  if (c >= names_.size()) throw std::out_of_range("WorldModel::class_name");
  return names_[c];
}

ClassId WorldModel::class_id(const std::string& name) const {
  const auto it = std::find(names_.begin(), names_.end(), name);
  if (it == names_.end())
    throw std::invalid_argument("WorldModel: no class '" + name + "'");
  return static_cast<ClassId>(std::distance(names_.begin(), it));
}

std::pair<WorldModel, double> WorldModel::restricted(
    const std::vector<ClassId>& keep) const {
  SYSUQ_EXPECT(!keep.empty(), "WorldModel::restricted: empty");
  std::vector<std::string> names;
  std::vector<double> priors;
  double kept_mass = 0.0;
  std::unordered_set<ClassId> seen;
  for (ClassId c : keep) {
    if (c >= names_.size())
      throw std::out_of_range("WorldModel::restricted: class id");
    if (!seen.insert(c).second)
      throw std::invalid_argument("WorldModel::restricted: duplicate class");
    names.push_back(names_[c]);
    priors.push_back(priors_.p(c));
    kept_mass += priors_.p(c);
  }
  SYSUQ_EXPECT(kept_mass > 0.0, "WorldModel::restricted: zero kept mass");
  return {WorldModel(std::move(names), std::move(priors)), 1.0 - kept_mass};
}

TrueWorld::TrueWorld(WorldModel modeled, std::vector<std::string> novel_names,
                     double novel_rate)
    : modeled_(std::move(modeled)),
      novel_names_(std::move(novel_names)),
      novel_rate_(novel_rate) {
  SYSUQ_EXPECT(novel_rate >= 0.0 && novel_rate < 1.0,
               "TrueWorld: novel_rate outside [0, 1)");
  SYSUQ_EXPECT(!(novel_rate > 0.0) || !novel_names_.empty(),
               "TrueWorld: novel_rate > 0 with no novel classes");
}

Encounter TrueWorld::sample(prob::Rng& rng) const {
  if (novel_rate_ > 0.0 && rng.bernoulli(novel_rate_)) {
    const std::size_t k = rng.uniform_index(novel_names_.size());
    return {modeled_.class_count() + k, false};
  }
  return {modeled_.priors().sample(rng), true};
}

const std::string& TrueWorld::class_name(ClassId c) const {
  if (c < modeled_.class_count()) return modeled_.class_name(c);
  const std::size_t k = c - modeled_.class_count();
  if (k >= novel_names_.size()) throw std::out_of_range("TrueWorld::class_name");
  return novel_names_[k];
}

}  // namespace sysuq::perception
