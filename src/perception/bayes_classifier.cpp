#include "perception/bayes_classifier.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>
#include "core/contracts.hpp"
#include "core/tolerance.hpp"

namespace sysuq::perception {

Feature sample_feature(const ClassDistribution& cls, prob::Rng& rng) {
  return {rng.gaussian(cls.mean.x, cls.sigma), rng.gaussian(cls.mean.y, cls.sigma)};
}

BayesClassifier::BayesClassifier(std::size_t k, double sigma, double prior_tau,
                                 prob::Categorical class_priors)
    : k_(k),
      sigma_(sigma),
      prior_tau_(prior_tau),
      priors_(std::move(class_priors)),
      n_(k, 0),
      sum_(k, Feature{}) {
  SYSUQ_EXPECT(k >= 2, "BayesClassifier: need >= 2 classes");
  SYSUQ_EXPECT(sigma > 0.0 && prior_tau > 0.0,
               "BayesClassifier: sigma, prior_tau > 0");
  SYSUQ_EXPECT(priors_.size() == k, "BayesClassifier: prior size mismatch");
}

void BayesClassifier::train(std::size_t label, const Feature& f) {
  if (label >= k_) throw std::out_of_range("BayesClassifier::train: label");
  n_[label] += 1;
  sum_[label].x += f.x;
  sum_[label].y += f.y;
}

std::size_t BayesClassifier::training_count(std::size_t label) const {
  if (label >= k_) throw std::out_of_range("BayesClassifier::training_count");
  return n_[label];
}

Feature BayesClassifier::posterior_mean(std::size_t label) const {
  if (label >= k_) throw std::out_of_range("BayesClassifier::posterior_mean");
  // Conjugate update: precision = 1/tau0^2 + n/sigma^2.
  const double prior_prec = 1.0 / (prior_tau_ * prior_tau_);
  const double data_prec =
      static_cast<double>(n_[label]) / (sigma_ * sigma_);
  const double denom = prior_prec + data_prec;
  return {sum_[label].x / (sigma_ * sigma_) / denom,
          sum_[label].y / (sigma_ * sigma_) / denom};
}

double BayesClassifier::posterior_tau(std::size_t label) const {
  if (label >= k_) throw std::out_of_range("BayesClassifier::posterior_tau");
  const double prior_prec = 1.0 / (prior_tau_ * prior_tau_);
  const double data_prec = static_cast<double>(n_[label]) / (sigma_ * sigma_);
  return std::sqrt(1.0 / (prior_prec + data_prec));
}

double BayesClassifier::predictive_var(std::size_t label) const {
  const double tau = posterior_tau(label);
  return sigma_ * sigma_ + tau * tau;
}

double BayesClassifier::log_predictive(std::size_t label, const Feature& f) const {
  const Feature mu = posterior_mean(label);
  const double var = predictive_var(label);
  const double dx = f.x - mu.x, dy = f.y - mu.y;
  return -0.5 * (dx * dx + dy * dy) / var - std::log(2.0 * M_PI * var);
}

prob::Categorical BayesClassifier::posterior(const Feature& f) const {
  std::vector<double> logp(k_);
  double maxv = -std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < k_; ++c) {
    logp[c] = std::log(std::max(priors_.p(c), tolerance::kUnderflow)) +
              log_predictive(c, f);
    maxv = std::max(maxv, logp[c]);
  }
  std::vector<double> w(k_);
  for (std::size_t c = 0; c < k_; ++c) w[c] = std::exp(logp[c] - maxv);
  return prob::Categorical::normalized(std::move(w));
}

prob::EntropyDecomposition BayesClassifier::decompose(const Feature& f,
                                                      std::size_t members,
                                                      prob::Rng& rng) const {
  if (members == 0)
    throw contracts::ContractViolation(
        "BayesClassifier::decompose: zero members");
  std::vector<prob::Categorical> ensemble;
  ensemble.reserve(members);
  for (std::size_t m = 0; m < members; ++m) {
    // Sample a concrete mean for every class from its posterior and
    // classify as if that model were true.
    std::vector<double> logp(k_);
    double maxv = -std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < k_; ++c) {
      const Feature mu = posterior_mean(c);
      const double tau = posterior_tau(c);
      const Feature sampled{rng.gaussian(mu.x, tau), rng.gaussian(mu.y, tau)};
      const double dx = f.x - sampled.x, dy = f.y - sampled.y;
      logp[c] = std::log(std::max(priors_.p(c), tolerance::kUnderflow)) -
                0.5 * (dx * dx + dy * dy) / (sigma_ * sigma_) -
                std::log(2.0 * M_PI * sigma_ * sigma_);
      maxv = std::max(maxv, logp[c]);
    }
    std::vector<double> w(k_);
    for (std::size_t c = 0; c < k_; ++c) w[c] = std::exp(logp[c] - maxv);
    ensemble.push_back(prob::Categorical::normalized(std::move(w)));
  }
  return prob::decompose_ensemble_entropy(ensemble);
}

double BayesClassifier::ood_score(const Feature& f) const {
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < k_; ++c) {
    const Feature mu = posterior_mean(c);
    const double var = predictive_var(c);
    const double dx = f.x - mu.x, dy = f.y - mu.y;
    best = std::min(best, (dx * dx + dy * dy) / var);
  }
  return best;
}

std::size_t BayesClassifier::classify(const Feature& f, double ood_threshold,
                                      double min_confidence) const {
  SYSUQ_EXPECT(ood_threshold > 0.0, "BayesClassifier::classify: ood_threshold");
  SYSUQ_EXPECT(contracts::is_probability(min_confidence),
               "BayesClassifier::classify: min_confidence");
  if (ood_score(f) > ood_threshold) return k_;
  const auto post = posterior(f);
  const std::size_t map = post.argmax();
  return post.p(map) >= min_confidence ? map : k_;
}

}  // namespace sysuq::perception
