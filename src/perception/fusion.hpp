// Multi-sensor fusion: the paper's *uncertainty tolerance* mean —
// "redundant architectures with diverse uncertainties" (Secs. IV, V).
//
// Three fusion strategies over k redundant sensors, plus a simulation
// harness that measures safety-relevant outcome rates under configurable
// sensor diversity and common-cause correlation.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "bayesnet/engine.hpp"
#include "perception/sensor.hpp"
#include "perception/world.hpp"
#include "prob/rng.hpp"

namespace sysuq::perception {

/// Fusion strategy for redundant sensor outputs.
enum class FusionRule {
  kMajorityVote,  ///< most frequent label; ties -> none (conservative)
  kNaiveBayes,    ///< product of per-sensor likelihoods under the priors
  kDempster,      ///< DS combination of discounted per-sensor masses
};

/// Outcome of one fused perception attempt.
struct FusionOutcome {
  std::size_t fused_label;  ///< 0..k-1 class or k = none
  bool correct;             ///< label matches a modeled true class
  bool hazardous;           ///< confidently wrong label for a modeled class,
                            ///< or a novel object labeled as a known class
};

/// Configuration of a redundant perception architecture.
struct RedundantArchitecture {
  std::vector<ConfusionSensor> sensors;
  FusionRule rule = FusionRule::kMajorityVote;
  /// Probability that all sensors see the *same* degraded row draw
  /// (common-cause: e.g. shared power/weather). 0 = fully independent.
  double common_cause_rate = 0.0;
  /// Reliability discount applied to each sensor's mass in kDempster.
  double discount = 0.1;
};

/// Fuses one encounter through the architecture; sensors draw
/// independently unless a common-cause event forces identical outputs.
[[nodiscard]] FusionOutcome fuse_once(const RedundantArchitecture& arch,
                                      const TrueWorld& world,
                                      const Encounter& encounter,
                                      prob::Rng& rng);

/// Aggregate metrics over a simulation campaign.
struct FusionMetrics {
  std::size_t encounters = 0;
  double accuracy = 0.0;        ///< correct label rate on modeled classes
  double hazard_rate = 0.0;     ///< hazardous outcome rate (see FusionOutcome)
  double none_rate = 0.0;       ///< fused "none" rate
  double novel_caught = 0.0;    ///< novel encounters fused to none (safe)
};

/// Runs `n` encounters and aggregates outcome rates.
[[nodiscard]] FusionMetrics simulate_fusion(const RedundantArchitecture& arch,
                                            const TrueWorld& world,
                                            std::size_t n, prob::Rng& rng);

/// Naive-Bayes fusion made explicit as a Bayesian network and served by a
/// shared InferenceEngine: one ground-truth class node (the developer
/// priors) with one observed-label child per sensor (its confusion rows as
/// CPT). Every fused encounter observes the same variable set, so the
/// engine's elimination-ordering cache hits on all queries after the
/// first; a long fusion campaign pays the planning cost once.
///
/// The decision rule matches FusionRule::kNaiveBayes: argmax of the
/// posterior if it is decisive (>= 0.5), otherwise abstain ("none", label
/// k); jointly impossible sensor outputs also abstain.
class BnFusion {
 public:
  BnFusion(const RedundantArchitecture& arch, const TrueWorld& world);

  // The engine holds a reference to the internal network.
  BnFusion(const BnFusion&) = delete;
  BnFusion& operator=(const BnFusion&) = delete;

  /// Posterior over the modeled classes given one hard label per sensor.
  /// Throws std::domain_error if the labels are jointly impossible.
  [[nodiscard]] prob::Categorical posterior(
      const std::vector<std::size_t>& labels) const;

  /// Fused decision: 0..k-1 class, or k = none/abstain.
  [[nodiscard]] std::size_t fuse(const std::vector<std::size_t>& labels) const;

  [[nodiscard]] const bayesnet::InferenceEngine& engine() const {
    return *engine_;
  }

 private:
  std::size_t classes_;
  std::size_t sensors_;
  bayesnet::BayesianNetwork net_;  // must outlive engine_
  bayesnet::VariableId truth_;
  std::vector<bayesnet::VariableId> sensor_nodes_;
  std::unique_ptr<bayesnet::InferenceEngine> engine_;
};

}  // namespace sysuq::perception
