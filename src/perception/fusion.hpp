// Multi-sensor fusion: the paper's *uncertainty tolerance* mean —
// "redundant architectures with diverse uncertainties" (Secs. IV, V).
//
// Three fusion strategies over k redundant sensors, plus a simulation
// harness that measures safety-relevant outcome rates under configurable
// sensor diversity and common-cause correlation.
#pragma once

#include <cstddef>
#include <vector>

#include "perception/sensor.hpp"
#include "perception/world.hpp"
#include "prob/rng.hpp"

namespace sysuq::perception {

/// Fusion strategy for redundant sensor outputs.
enum class FusionRule {
  kMajorityVote,  ///< most frequent label; ties -> none (conservative)
  kNaiveBayes,    ///< product of per-sensor likelihoods under the priors
  kDempster,      ///< DS combination of discounted per-sensor masses
};

/// Outcome of one fused perception attempt.
struct FusionOutcome {
  std::size_t fused_label;  ///< 0..k-1 class or k = none
  bool correct;             ///< label matches a modeled true class
  bool hazardous;           ///< confidently wrong label for a modeled class,
                            ///< or a novel object labeled as a known class
};

/// Configuration of a redundant perception architecture.
struct RedundantArchitecture {
  std::vector<ConfusionSensor> sensors;
  FusionRule rule = FusionRule::kMajorityVote;
  /// Probability that all sensors see the *same* degraded row draw
  /// (common-cause: e.g. shared power/weather). 0 = fully independent.
  double common_cause_rate = 0.0;
  /// Reliability discount applied to each sensor's mass in kDempster.
  double discount = 0.1;
};

/// Fuses one encounter through the architecture; sensors draw
/// independently unless a common-cause event forces identical outputs.
[[nodiscard]] FusionOutcome fuse_once(const RedundantArchitecture& arch,
                                      const TrueWorld& world,
                                      const Encounter& encounter,
                                      prob::Rng& rng);

/// Aggregate metrics over a simulation campaign.
struct FusionMetrics {
  std::size_t encounters = 0;
  double accuracy = 0.0;        ///< correct label rate on modeled classes
  double hazard_rate = 0.0;     ///< hazardous outcome rate (see FusionOutcome)
  double none_rate = 0.0;       ///< fused "none" rate
  double novel_caught = 0.0;    ///< novel encounters fused to none (safe)
};

/// Runs `n` encounters and aggregates outcome rates.
[[nodiscard]] FusionMetrics simulate_fusion(const RedundantArchitecture& arch,
                                            const TrueWorld& world,
                                            std::size_t n, prob::Rng& rng);

}  // namespace sysuq::perception
