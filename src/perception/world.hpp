// World models and ground-truth generation for the perception chain.
//
// A WorldModel is the *developer's* model of the operational domain: the
// object classes assumed to exist and their encounter priors (the paper's
// "we assume that only cars or pedestrians will be encountered"). The
// TrueWorld is the actual domain, which may contain classes the developer
// never modeled — the ontological gap.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "prob/discrete.hpp"
#include "prob/rng.hpp"

namespace sysuq::perception {

/// Index of an object class within a world.
using ClassId = std::size_t;

/// The developer's codified model of the operational domain.
class WorldModel {
 public:
  /// Classes with encounter priors (normalized at construction).
  WorldModel(std::vector<std::string> class_names, std::vector<double> priors);

  [[nodiscard]] std::size_t class_count() const { return names_.size(); }
  [[nodiscard]] const std::string& class_name(ClassId c) const;
  [[nodiscard]] ClassId class_id(const std::string& name) const;
  [[nodiscard]] const prob::Categorical& priors() const { return priors_; }

  /// Restricts the world to a subset of classes (operational design
  /// domain restriction — the paper's flagship *uncertainty prevention*
  /// mean). Priors are renormalized over the kept classes; returns the
  /// fraction of encounters excluded by the restriction.
  [[nodiscard]] std::pair<WorldModel, double> restricted(
      const std::vector<ClassId>& keep) const;

 private:
  std::vector<std::string> names_;
  prob::Categorical priors_;
};

/// One ground-truth encounter drawn from the true world.
struct Encounter {
  ClassId true_class;   ///< index into the TRUE world's class list
  bool modeled;         ///< true if the class exists in the developer model
};

/// The actual operational domain: the developer-modeled classes plus
/// (possibly) novel classes the model knows nothing about.
class TrueWorld {
 public:
  /// `modeled` is the developer's world; `novel_names`/`novel_rate`
  /// introduce unmodeled classes encountered with total probability
  /// `novel_rate` (split evenly among them). novel_rate in [0, 1).
  TrueWorld(WorldModel modeled, std::vector<std::string> novel_names,
            double novel_rate);

  /// Draws one encounter. Classes [0, modeled_count) are the developer's;
  /// classes beyond are novel.
  [[nodiscard]] Encounter sample(prob::Rng& rng) const;

  [[nodiscard]] const WorldModel& modeled() const { return modeled_; }
  [[nodiscard]] std::size_t total_class_count() const {
    return modeled_.class_count() + novel_names_.size();
  }
  [[nodiscard]] std::size_t novel_class_count() const {
    return novel_names_.size();
  }
  [[nodiscard]] double novel_rate() const { return novel_rate_; }
  /// Name of any true-world class (modeled or novel).
  [[nodiscard]] const std::string& class_name(ClassId c) const;

 private:
  WorldModel modeled_;
  std::vector<std::string> novel_names_;
  double novel_rate_;
};

}  // namespace sysuq::perception
