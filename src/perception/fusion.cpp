#include "perception/fusion.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

// sysuq-lint-allow(layering): Dempster-Shafer fusion deliberately maps
// sensor reports onto evidence-theory mass functions; this is the one
// sanctioned perception -> evidence edge (both sit on layer 3).
#include "evidence/mass.hpp"
#include "core/contracts.hpp"
#include "obs/registry.hpp"

namespace sysuq::perception {

namespace {

struct FusionMetricsInstruments {
  obs::Counter& posterior_queries;
  obs::Counter& abstentions;

  static FusionMetricsInstruments& instance() {
    auto& registry = obs::Registry::global();
    static FusionMetricsInstruments m{
        registry.counter("perception.fusion.posterior_queries"),
        registry.counter("perception.fusion.abstentions")};
    return m;
  }
};

std::size_t fuse_majority(const std::vector<std::size_t>& labels,
                          std::size_t none_label) {
  std::map<std::size_t, std::size_t> votes;
  for (std::size_t l : labels) ++votes[l];
  std::size_t best = none_label, best_count = 0;
  bool tie = false;
  for (const auto& [label, count] : votes) {
    if (count > best_count) {
      best = label;
      best_count = count;
      tie = false;
    } else if (count == best_count) {
      tie = true;
    }
  }
  return tie ? none_label : best;
}

std::size_t fuse_bayes(const RedundantArchitecture& arch,
                       const TrueWorld& world,
                       const std::vector<std::size_t>& labels) {
  // Posterior over the developer's modeled classes given each sensor's
  // hard output, assuming conditional independence (naive Bayes).
  const auto& priors = world.modeled().priors();
  const std::size_t k = arch.sensors[0].modeled_classes();
  std::vector<double> post(k);
  for (std::size_t c = 0; c < k; ++c) {
    double v = priors.p(c);
    for (std::size_t s = 0; s < arch.sensors.size(); ++s)
      v *= arch.sensors[s].row(c).p(labels[s]);
    post[c] = v;
  }
  double total = 0.0;
  for (double v : post) total += v;
  if (!(total > 0.0)) return k;  // outputs jointly impossible -> none
  const auto best = static_cast<std::size_t>(
      std::max_element(post.begin(), post.end()) - post.begin());
  // Require a decisive posterior; otherwise abstain (none).
  return post[best] / total >= 0.5 ? best : k;
}

std::size_t fuse_dempster(const RedundantArchitecture& arch,
                          const std::vector<std::size_t>& labels) {
  const std::size_t k = arch.sensors[0].modeled_classes();
  // Frame = modeled classes plus an explicit "nothing" hypothesis.
  std::vector<std::string> names;
  for (std::size_t c = 0; c < k; ++c) names.push_back("c" + std::to_string(c));
  names.push_back("none");
  const evidence::Frame frame(names);

  evidence::MassFunction fused = evidence::MassFunction::vacuous(frame);
  for (std::size_t s = 0; s < arch.sensors.size(); ++s) {
    const std::size_t label = labels[s];
    const std::size_t hyp = label;  // label k maps to the "none" hypothesis
    auto m = evidence::MassFunction::simple_support(frame, frame.singleton(hyp),
                                                    1.0 - arch.discount);
    fused = evidence::dempster_combine(fused, m);
  }
  // Decide by maximum pignistic probability; abstain if "none" wins or
  // the winner is not decisive.
  const auto pig = fused.pignistic();
  const std::size_t best = pig.argmax();
  if (best == k) return k;
  return pig.p(best) >= 0.5 ? best : k;
}

}  // namespace

FusionOutcome fuse_once(const RedundantArchitecture& arch,
                        const TrueWorld& world, const Encounter& encounter,
                        prob::Rng& rng) {
  SYSUQ_EXPECT(!arch.sensors.empty(), "fuse_once: no sensors");
  const std::size_t k = arch.sensors[0].modeled_classes();
  for (const auto& s : arch.sensors) {
    SYSUQ_EXPECT(s.modeled_classes() == k, "fuse_once: sensor shape mismatch");
  }
  SYSUQ_ASSERT_PROB(arch.common_cause_rate, "fuse_once: common_cause_rate");

  std::vector<std::size_t> labels(arch.sensors.size());
  if (arch.common_cause_rate > 0.0 && rng.bernoulli(arch.common_cause_rate)) {
    // Common cause: every channel replays the same draw from sensor 0 —
    // diversity is defeated (shared-parent node in the paper's BN terms).
    const std::size_t shared =
        arch.sensors[0].classify(encounter.true_class, rng).label;
    std::fill(labels.begin(), labels.end(), shared);
  } else {
    for (std::size_t s = 0; s < arch.sensors.size(); ++s)
      labels[s] = arch.sensors[s].classify(encounter.true_class, rng).label;
  }

  std::size_t fused = k;
  switch (arch.rule) {
    case FusionRule::kMajorityVote: fused = fuse_majority(labels, k); break;
    case FusionRule::kNaiveBayes: fused = fuse_bayes(arch, world, labels); break;
    case FusionRule::kDempster: fused = fuse_dempster(arch, labels); break;
  }

  FusionOutcome out{};
  out.fused_label = fused;
  if (encounter.modeled) {
    out.correct = fused == encounter.true_class;
    out.hazardous = fused != encounter.true_class && fused != k;
  } else {
    out.correct = false;  // no correct label exists for a novel object
    out.hazardous = fused != k;  // claiming to know an unknown object
  }
  return out;
}

BnFusion::BnFusion(const RedundantArchitecture& arch, const TrueWorld& world) {
  SYSUQ_EXPECT(!arch.sensors.empty(), "BnFusion: no sensors");
  classes_ = arch.sensors[0].modeled_classes();
  sensors_ = arch.sensors.size();
  for (const auto& s : arch.sensors) {
    SYSUQ_EXPECT(s.modeled_classes() == classes_,
                 "BnFusion: sensor shape mismatch");
  }
  const WorldModel& model = world.modeled();
  SYSUQ_EXPECT(model.class_count() == classes_,
               "BnFusion: world/sensor class mismatch");

  std::vector<std::string> truth_states;
  for (std::size_t c = 0; c < classes_; ++c)
    truth_states.push_back(model.class_name(c));
  truth_ = net_.add_variable("ground_truth", truth_states);

  std::vector<std::string> output_states = truth_states;
  output_states.push_back("none");
  for (std::size_t s = 0; s < sensors_; ++s) {
    const auto id = net_.add_variable("sensor" + std::to_string(s),
                                      output_states);
    std::vector<prob::Categorical> rows;
    rows.reserve(classes_);
    for (std::size_t c = 0; c < classes_; ++c)
      rows.push_back(arch.sensors[s].row(c));
    net_.set_cpt(id, {truth_}, std::move(rows));
    sensor_nodes_.push_back(id);
  }
  net_.set_cpt(truth_, {}, {model.priors()});
  engine_ = std::make_unique<bayesnet::InferenceEngine>(net_);
}

prob::Categorical BnFusion::posterior(
    const std::vector<std::size_t>& labels) const {
  FusionMetricsInstruments::instance().posterior_queries.inc();
  if (labels.size() != sensors_)
    throw contracts::ContractViolation(
        "BnFusion::posterior: label count mismatch");
  bayesnet::Evidence evidence;
  for (std::size_t s = 0; s < sensors_; ++s) {
    if (labels[s] > classes_)  // 0..k-1 class, k = none
      throw std::out_of_range("BnFusion::posterior: label out of range");
    evidence[sensor_nodes_[s]] = labels[s];
  }
  return engine_->query(truth_, evidence);
}

std::size_t BnFusion::fuse(const std::vector<std::size_t>& labels) const {
  auto& metrics = FusionMetricsInstruments::instance();
  try {
    const auto post = posterior(labels);
    const std::size_t best = post.argmax();
    if (post.p(best) >= 0.5) return best;
    metrics.abstentions.inc();
    return classes_;
  } catch (const std::domain_error&) {
    metrics.abstentions.inc();
    return classes_;  // jointly impossible outputs -> abstain
  }
}

FusionMetrics simulate_fusion(const RedundantArchitecture& arch,
                              const TrueWorld& world, std::size_t n,
                              prob::Rng& rng) {
  SYSUQ_EXPECT(n != 0, "simulate_fusion: n == 0");
  FusionMetrics m{};
  m.encounters = n;
  std::size_t modeled = 0, correct = 0, hazard = 0, none = 0;
  std::size_t novel = 0, caught = 0;
  const std::size_t k = arch.sensors.at(0).modeled_classes();
  for (std::size_t i = 0; i < n; ++i) {
    const auto enc = world.sample(rng);
    const auto out = fuse_once(arch, world, enc, rng);
    if (enc.modeled) {
      ++modeled;
      correct += out.correct ? 1 : 0;
    } else {
      ++novel;
      caught += (out.fused_label == k) ? 1 : 0;
    }
    hazard += out.hazardous ? 1 : 0;
    none += (out.fused_label == k) ? 1 : 0;
  }
  m.accuracy = modeled > 0 ? static_cast<double>(correct) / modeled : 0.0;
  m.hazard_rate = static_cast<double>(hazard) / n;
  m.none_rate = static_cast<double>(none) / n;
  m.novel_caught = novel > 0 ? static_cast<double>(caught) / novel : 1.0;
  return m;
}

}  // namespace sysuq::perception
