// The library's shared numeric tolerances.
//
// Every epsilon the code compares against lives here under a name that
// says what kind of slack it grants. The analyzer (tools/sysuq_analyze/)
// rejects raw tolerance-sized literals (1e-8 and smaller) anywhere else
// in src/, so a new tolerance must be added — and justified — in this
// file rather than inlined at a call site. That is the paper's
// "explicit assumptions" discipline (Sec. III) applied to floating-point
// slack: a magic 1e-9 is an epistemic assumption the reader cannot see.
//
// This header is dependency-free and usable from every module, including
// default arguments in public headers.
#pragma once

namespace sysuq::tolerance {

/// Normalization slack: |sum(p) - 1| tolerated when a vector claims to be
/// a probability distribution (categoricals, CPT rows, DTMC/MDP rows,
/// mass functions, subjective opinions). The single epsilon shared by the
/// contracts layer, the tests, and all normalization code.
inline constexpr double kProbSum = 1e-9;

/// Degeneracy guard: denominators, interval widths, and rates smaller
/// than this are treated as zero (conditioning on impossible events,
/// vanishing uniformization rates, credal bound slack).
inline constexpr double kTiny = 1e-12;

/// Default convergence threshold for fixed-point iterations that stop on
/// the change between successive sweeps (value iteration, stationary
/// distributions, uniformization tails).
inline constexpr double kSolver = 1e-12;

/// Looser per-sweep threshold for interval (two-sided) iterations whose
/// bounds converge from both ends and pay double per sweep.
inline constexpr double kIteration = 1e-10;

/// Fixed-point termination for credal/optimization lambda iterations.
inline constexpr double kFixpoint = 1e-13;

/// Convergence threshold for loopy-BP flooding sweeps: the largest
/// absolute change of any normalized (linear-domain) message entry
/// between successive iterations. Looser than kSolver because one
/// sweep touches every edge of the factor graph and the certified
/// bounds absorb the residual explicitly.
inline constexpr double kBpMessageDelta = 1e-10;

/// Step-size termination for scalar root refinement (inverse CDFs,
/// inverse error function Halley/Newton steps).
inline constexpr double kRoot = 1e-14;

/// Relative termination for series and continued-fraction evaluation
/// (incomplete beta/gamma, Lentz's algorithm).
inline constexpr double kSeries = 1e-15;

/// Underflow floor: the smallest magnitude kept distinguishable from
/// zero in log-space accumulations and continued fractions (Numerical
/// Recipes' FPMIN idiom).
inline constexpr double kUnderflow = 1e-300;

/// Rescaling trigger for scaled variable elimination: an intermediate
/// factor whose total mass leaves [kRescaleFloor, 1/kRescaleFloor] is
/// renormalized and the factored-out mass accumulated as a log
/// normalizer. 1e-100 sits ~200 decades above the subnormal cliff, so a
/// product of several not-yet-rescaled intermediates still cannot
/// underflow to exact zero, while ordinary queries (masses near 1)
/// never trigger a rescale and reproduce the unscaled arithmetic bit
/// for bit.
inline constexpr double kRescaleFloor = 1e-100;

}  // namespace sysuq::tolerance
