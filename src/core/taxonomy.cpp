#include "core/taxonomy.hpp"

#include <algorithm>
#include <stdexcept>
#include "core/contracts.hpp"

namespace sysuq::core {

const char* to_string(UncertaintyType t) {
  switch (t) {
    case UncertaintyType::kAleatory: return "aleatory";
    case UncertaintyType::kEpistemic: return "epistemic";
    case UncertaintyType::kOntological: return "ontological";
  }
  return "?";
}

const char* to_string(Mean m) {
  switch (m) {
    case Mean::kPrevention: return "prevention";
    case Mean::kRemoval: return "removal";
    case Mean::kTolerance: return "tolerance";
    case Mean::kForecasting: return "forecasting";
  }
  return "?";
}

const char* to_string(Phase p) {
  switch (p) {
    case Phase::kDesignTime: return "design-time";
    case Phase::kRuntime: return "runtime";
    case Phase::kOperation: return "operation";
  }
  return "?";
}

const std::vector<UncertaintyType>& all_uncertainty_types() {
  static const std::vector<UncertaintyType> kAll{
      UncertaintyType::kAleatory, UncertaintyType::kEpistemic,
      UncertaintyType::kOntological};
  return kAll;
}

const std::vector<Mean>& all_means() {
  static const std::vector<Mean> kAll{Mean::kPrevention, Mean::kRemoval,
                                      Mean::kTolerance, Mean::kForecasting};
  return kAll;
}

void MethodRegistry::add(Method method) {
  SYSUQ_EXPECT(!method.name.empty(), "MethodRegistry: empty method name");
  SYSUQ_EXPECT(!method.addresses.empty(),
               "MethodRegistry: method addresses no type");
  for (const auto& m : methods_) {
    if (m.name == method.name)
      throw std::invalid_argument("MethodRegistry: duplicate method '" +
                                  method.name + "'");
  }
  methods_.push_back(std::move(method));
}

MethodRegistry MethodRegistry::paper_catalog() {
  using T = UncertaintyType;
  MethodRegistry r;
  // Sec. IV, prevention.
  r.add({"simple architectures (avoid emergent behavior)", Mean::kPrevention,
         {T::kEpistemic, T::kOntological}, Phase::kDesignTime, "Sec. IV"});
  r.add({"operational design domain restriction", Mean::kPrevention,
         {T::kAleatory, T::kEpistemic, T::kOntological}, Phase::kDesignTime,
         "Sec. IV"});
  r.add({"well-known components", Mean::kPrevention, {T::kEpistemic},
         Phase::kDesignTime, "abstract"});
  // Sec. IV / V, removal.
  r.add({"safety analysis with epistemic/ontological uncertainty",
         Mean::kRemoval, {T::kEpistemic, T::kOntological}, Phase::kDesignTime,
         "Sec. V (evidential BN, ref [8])"});
  r.add({"design of experiment", Mean::kRemoval, {T::kEpistemic},
         Phase::kDesignTime, "abstract"});
  r.add({"field observation / continuous updates", Mean::kRemoval,
         {T::kEpistemic, T::kOntological}, Phase::kOperation, "Sec. IV"});
  r.add({"probabilistic formal verification", Mean::kRemoval,
         {T::kAleatory, T::kEpistemic}, Phase::kDesignTime,
         "Sec. I (refs [9], [10])"});
  // Sec. IV, tolerance.
  r.add({"redundant architectures with diverse uncertainties",
         Mean::kTolerance, {T::kAleatory, T::kEpistemic}, Phase::kRuntime,
         "Secs. IV, V"});
  r.add({"machine learning with epistemic uncertainty output",
         Mean::kTolerance, {T::kEpistemic}, Phase::kRuntime,
         "Sec. I (refs [5], [6])"});
  r.add({"saliency maps", Mean::kTolerance, {T::kEpistemic}, Phase::kRuntime,
         "Sec. I (ref [7])"});
  // Sec. IV, forecasting.
  r.add({"residual uncertainty estimation", Mean::kForecasting,
         {T::kEpistemic, T::kOntological}, Phase::kDesignTime, "Sec. IV"});
  r.add({"assurance cases with belief modeling", Mean::kForecasting,
         {T::kEpistemic}, Phase::kDesignTime, "Sec. I (ref [11])"});
  r.add({"missing-mass (Good-Turing) forecasts of unseen events",
         Mean::kForecasting, {T::kOntological}, Phase::kOperation,
         "library extension of Sec. IV"});
  return r;
}

std::vector<Method> MethodRegistry::by_mean(Mean m) const {
  std::vector<Method> out;
  for (const auto& method : methods_) {
    if (method.mean == m) out.push_back(method);
  }
  return out;
}

std::vector<Method> MethodRegistry::by_type(UncertaintyType t) const {
  std::vector<Method> out;
  for (const auto& method : methods_) {
    if (std::find(method.addresses.begin(), method.addresses.end(), t) !=
        method.addresses.end())
      out.push_back(method);
  }
  return out;
}

std::size_t MethodRegistry::coverage(Mean m, UncertaintyType t) const {
  std::size_t n = 0;
  for (const auto& method : methods_) {
    if (method.mean != m) continue;
    if (std::find(method.addresses.begin(), method.addresses.end(), t) !=
        method.addresses.end())
      ++n;
  }
  return n;
}

std::vector<UncertaintyType> MethodRegistry::uncovered_types() const {
  std::vector<UncertaintyType> out;
  for (const auto t : all_uncertainty_types()) {
    if (by_type(t).empty()) out.push_back(t);
  }
  return out;
}

}  // namespace sysuq::core
