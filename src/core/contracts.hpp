// Contract macros for the sysuq library.
//
// The paper's epistemic/ontological split (Sec. III) is about knowing
// what a model silently assumes; these macros make the *code's*
// assumptions explicit and machine-checked. Every public entry point
// states its preconditions with SYSUQ_EXPECT / SYSUQ_ASSERT_PROB*, and
// its postconditions with SYSUQ_ENSURE, instead of scattering ad-hoc
// `if (...) throw` validation.
//
// Enforcement is build- and runtime-configurable:
//  * CMake `-DSYSUQ_CONTRACTS=off|throw|abort` (default `throw`) selects
//    the startup mode; `off` at configure time compiles the checks out
//    entirely (macros expand to `((void)0)`).
//  * `sysuq::contracts::set_mode()` switches between kOff / kThrow /
//    kAbort at runtime (unless compiled out) — used by tests and by
//    hosts that want abort-on-violation in production canaries.
//
// In kThrow mode a violation raises ContractViolation, which derives
// from std::invalid_argument so existing exception contracts
// (invalid_argument, logic_error) continue to hold for callers.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/tolerance.hpp"

namespace sysuq::contracts {

/// Enforcement mode for contract checks.
enum class Mode {
  kOff = 0,    ///< conditions are not evaluated
  kThrow = 1,  ///< violations raise ContractViolation (default)
  kAbort = 2,  ///< violations print to stderr and std::abort()
};

/// Raised on contract violation in Mode::kThrow. Derives from
/// std::invalid_argument (itself a std::logic_error) so call sites keep
/// their documented exception types.
class ContractViolation : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Current enforcement mode (startup value set by the build
/// configuration; see SYSUQ_CONTRACTS in CMake).
[[nodiscard]] Mode mode() noexcept;

/// Overrides the enforcement mode process-wide. Thread-safe; intended
/// for tests and embedding hosts, not for per-call toggling.
void set_mode(Mode m) noexcept;

/// True when contract conditions are evaluated (mode() != kOff).
[[nodiscard]] bool enforced() noexcept;

/// Reports a violation according to mode(): throws ContractViolation in
/// kThrow, writes a diagnostic to stderr and aborts in kAbort, returns
/// silently in kOff. `kind` is "precondition"/"postcondition"/..,
/// `expr` the stringized condition, `what` the call-site message.
void fail(const char* kind, const char* expr, const char* what);

/// Overload for call sites that build their message dynamically.
void fail(const char* kind, const char* expr, const std::string& what);

// ----------------------------------------------------------------------
// Probability-domain predicates. All share the single normalization
// epsilon tolerance::kProbSum.

/// Finite and within [0, 1].
[[nodiscard]] bool is_probability(double p) noexcept;

/// Every element finite and non-negative.
[[nodiscard]] bool is_finite_nonneg(const std::vector<double>& v) noexcept;

/// Non-empty, every element finite and non-negative, and the sum within
/// `tol` of 1.
[[nodiscard]] bool is_normalized(const std::vector<double>& v,
                                 double tol = tolerance::kProbSum) noexcept;

/// Checks `p` with is_probability and reports "<what>: probability must
/// be finite and in [0, 1]" on violation.
void check_probability(double p, const char* what);

/// Checks that `v` is a probability vector (non-empty; finite,
/// non-negative entries; sum within tolerance::kProbSum of 1) and
/// reports a violation naming the failed clause.
void check_prob_vec(const std::vector<double>& v, const char* what);

}  // namespace sysuq::contracts

#if defined(SYSUQ_CONTRACTS_OFF)

// Compiled-out form: the arguments stay inside an unevaluated sizeof so
// they are never executed but still count as used (no -Wunused-variable
// churn between the two configurations).
#define SYSUQ_CONTRACTS_UNUSED_(expr) ((void)sizeof((expr), 0))
#define SYSUQ_EXPECT(cond, what) \
  (SYSUQ_CONTRACTS_UNUSED_(cond), SYSUQ_CONTRACTS_UNUSED_(what))
#define SYSUQ_ENSURE(cond, what) \
  (SYSUQ_CONTRACTS_UNUSED_(cond), SYSUQ_CONTRACTS_UNUSED_(what))
#define SYSUQ_ASSERT_PROB(p, what) \
  (SYSUQ_CONTRACTS_UNUSED_(p), SYSUQ_CONTRACTS_UNUSED_(what))
#define SYSUQ_ASSERT_PROB_VEC(vec, what) \
  (SYSUQ_CONTRACTS_UNUSED_(vec), SYSUQ_CONTRACTS_UNUSED_(what))

#else

/// Precondition: argument/state validation at a public entry point.
#define SYSUQ_EXPECT(cond, what)                                      \
  do {                                                                \
    if (::sysuq::contracts::enforced() && !(cond))                    \
      ::sysuq::contracts::fail("precondition", #cond, what);          \
  } while (false)

/// Postcondition: result validation before returning.
#define SYSUQ_ENSURE(cond, what)                                      \
  do {                                                                \
    if (::sysuq::contracts::enforced() && !(cond))                    \
      ::sysuq::contracts::fail("postcondition", #cond, what);         \
  } while (false)

/// Scalar probability: finite and in [0, 1].
#define SYSUQ_ASSERT_PROB(p, what)                                    \
  do {                                                                \
    if (::sysuq::contracts::enforced())                               \
      ::sysuq::contracts::check_probability((p), what);               \
  } while (false)

/// Probability vector: non-empty, finite, non-negative, normalized
/// within tolerance::kProbSum.
#define SYSUQ_ASSERT_PROB_VEC(vec, what)                              \
  do {                                                                \
    if (::sysuq::contracts::enforced())                               \
      ::sysuq::contracts::check_prob_vec((vec), what);                \
  } while (false)

#endif  // SYSUQ_CONTRACTS_OFF
