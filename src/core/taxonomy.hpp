// The paper's taxonomy (Fig. 3), executable: uncertainty types, means to
// cope with them, and a registry of methods classified along both axes.
//
// "Analogous to the taxonomy of Laprie et al. we cluster methods into
// uncertainty prevention, uncertainty removal, uncertainty tolerance and
// uncertainty forecasting."
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sysuq::core {

/// The three uncertainty types of Sec. III.
enum class UncertaintyType : std::uint8_t {
  kAleatory,    ///< randomness of the chosen probabilistic model (III.A)
  kEpistemic,   ///< known-unknown: parameter/accuracy gaps (III.B)
  kOntological, ///< unknown-unknown: model incompleteness (III.C)
};

/// The four means of Sec. IV.
enum class Mean : std::uint8_t {
  kPrevention,   ///< avoid uncertainty (simple architectures, ODD limits)
  kRemoval,      ///< reduce it (safety analysis, field observation)
  kTolerance,    ///< operate despite it (redundancy, uncertainty-aware ML)
  kForecasting,  ///< estimate the residual (release argumentation)
};

/// Lifecycle phase in which a method applies.
enum class Phase : std::uint8_t { kDesignTime, kRuntime, kOperation };

[[nodiscard]] const char* to_string(UncertaintyType t);
[[nodiscard]] const char* to_string(Mean m);
[[nodiscard]] const char* to_string(Phase p);

/// All enumerators, for sweeps.
[[nodiscard]] const std::vector<UncertaintyType>& all_uncertainty_types();
[[nodiscard]] const std::vector<Mean>& all_means();

/// A catalogued engineering method.
struct Method {
  std::string name;
  Mean mean;
  std::vector<UncertaintyType> addresses;
  Phase phase;
  std::string reference;  ///< paper section / citation it comes from
};

/// Registry of methods classified by (mean, type) — Fig. 3 made
/// queryable. Ships with the paper's own catalog; extensible.
class MethodRegistry {
 public:
  /// Empty registry.
  MethodRegistry() = default;

  /// The catalog assembled from the paper's Secs. I, IV and V.
  [[nodiscard]] static MethodRegistry paper_catalog();

  /// Registers a method; names must be unique.
  void add(Method method);

  [[nodiscard]] std::size_t size() const { return methods_.size(); }
  [[nodiscard]] const std::vector<Method>& methods() const { return methods_; }

  /// Methods employing a given mean.
  // sysuq-lint-allow(contract-coverage): total filter over enum inputs
  [[nodiscard]] std::vector<Method> by_mean(Mean m) const;

  /// Methods addressing a given uncertainty type.
  // sysuq-lint-allow(contract-coverage): total filter over enum inputs
  [[nodiscard]] std::vector<Method> by_type(UncertaintyType t) const;

  /// Number of catalogued methods covering the (mean, type) cell.
  // sysuq-lint-allow(contract-coverage): total filter over enum inputs
  [[nodiscard]] std::size_t coverage(Mean m, UncertaintyType t) const;

  /// Types with no method of any mean addressing them — taxonomy gaps.
  [[nodiscard]] std::vector<UncertaintyType> uncovered_types() const;

 private:
  std::vector<Method> methods_;
};

}  // namespace sysuq::core
