#include "core/contracts.hpp"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace sysuq::contracts {
namespace {

constexpr Mode startup_mode() noexcept {
#if defined(SYSUQ_CONTRACTS_ABORT)
  return Mode::kAbort;
#else
  return Mode::kThrow;
#endif
}

std::atomic<Mode>& mode_flag() noexcept {
  static std::atomic<Mode> flag{startup_mode()};
  return flag;
}

}  // namespace

Mode mode() noexcept { return mode_flag().load(std::memory_order_relaxed); }

void set_mode(Mode m) noexcept {
  mode_flag().store(m, std::memory_order_relaxed);
}

bool enforced() noexcept { return mode() != Mode::kOff; }

void fail(const char* kind, const char* expr, const char* what) {
  switch (mode()) {
    case Mode::kOff:
      return;
    case Mode::kAbort:
      std::fprintf(stderr, "sysuq contract violation: %s [%s: %s]\n", what,
                   kind, expr);
      std::abort();
    case Mode::kThrow:
      break;
  }
  std::string message(what);
  message += " [";
  message += kind;
  message += " violated: ";
  message += expr;
  message += "]";
  throw ContractViolation(message);
}

void fail(const char* kind, const char* expr, const std::string& what) {
  fail(kind, expr, what.c_str());
}

bool is_probability(double p) noexcept {
  return std::isfinite(p) && p >= 0.0 && p <= 1.0;
}

bool is_finite_nonneg(const std::vector<double>& v) noexcept {
  for (double x : v) {
    if (!std::isfinite(x) || x < 0.0) return false;
  }
  return true;
}

bool is_normalized(const std::vector<double>& v, double tol) noexcept {
  if (v.empty() || !is_finite_nonneg(v)) return false;
  double sum = 0.0;
  for (double x : v) sum += x;
  return std::fabs(sum - 1.0) <= tol;
}

void check_probability(double p, const char* what) {
  if (!is_probability(p))
    fail("precondition", "is_probability(p)",
         (std::string(what) + ": probability must be finite and in [0, 1]")
             .c_str());
}

void check_prob_vec(const std::vector<double>& v, const char* what) {
  if (v.empty()) {
    fail("precondition", "!v.empty()", (std::string(what) + ": empty").c_str());
    return;
  }
  if (!is_finite_nonneg(v)) {
    fail("precondition", "is_finite_nonneg(v)",
         (std::string(what) +
          ": probabilities must be finite and non-negative")
             .c_str());
    return;
  }
  if (!is_normalized(v)) {
    fail("precondition", "is_normalized(v)",
         (std::string(what) + ": probabilities must sum to 1").c_str());
  }
}

}  // namespace sysuq::contracts
