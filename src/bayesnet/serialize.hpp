// Plain-text serialization of Bayesian networks.
//
// Format (whitespace-separated tokens, '#' comments):
//
//   sysuq-bayesnet 1
//   variable <name> <state> <state> ...
//   cpt <child> | <parent> <parent> ...
//   <p p p ...>          # one row per parent configuration,
//   ...                  # last parent varying fastest
//
// Names must not contain whitespace (the in-memory model allows it; the
// serializer rejects such networks explicitly).
#pragma once

#include <string>

#include "bayesnet/network.hpp"

namespace sysuq::bayesnet {

/// Serializes a validated network to the text format.
[[nodiscard]] std::string to_text(const BayesianNetwork& net);

/// Parses a network from the text format; throws std::invalid_argument
/// with a line-numbered message on malformed input.
[[nodiscard]] BayesianNetwork from_text(const std::string& text);

}  // namespace sysuq::bayesnet
