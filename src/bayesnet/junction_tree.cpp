#include "bayesnet/junction_tree.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <iterator>
#include <limits>
#include <stdexcept>
#include <utility>

#include "bayesnet/inference.hpp"
#include "bayesnet/kernels.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace sysuq::bayesnet {

namespace {

// Junction-tree instruments, registered once on first use. Counters
// aggregate across every tree built in the process.
struct JtMetrics {
  obs::Counter& builds;
  obs::Histogram& calibration_seconds;
  obs::Histogram& cliques;
  obs::Histogram& max_clique_size;

  static JtMetrics& instance() {
    auto& reg = obs::Registry::global();
    static JtMetrics m{
        reg.counter("bayesnet.jt.builds"),
        reg.histogram("bayesnet.jt.calibration_seconds", obs::seconds_buckets()),
        reg.histogram("bayesnet.jt.cliques", obs::count_buckets()),
        reg.histogram("bayesnet.jt.max_clique_size",
                      {1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0, 32.0}),
    };
    return m;
  }
};

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

// Sums out every scope variable not in `keep` (keep is sorted) in one
// strided pass; the result's scope is scope ∩ keep.
kernels::Table marginalize_to(const kernels::View& f,
                              const std::vector<VariableId>& keep,
                              Arena& arena) {
  VariableId kept[kernels::kMaxRank];
  std::size_t nkept = 0;
  for (std::size_t i = 0; i < f.rank; ++i) {
    if (std::binary_search(keep.begin(), keep.end(), f.scope[i]))
      kept[nkept++] = f.scope[i];
  }
  return kernels::marginalize_keep(f, kept, nkept, arena);
}

std::size_t intersection_size(const std::vector<VariableId>& a,
                              const std::vector<VariableId>& b) {
  std::size_t count = 0;
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      ++count;
      ++ia;
      ++ib;
    }
  }
  return count;
}

std::vector<VariableId> intersection(const std::vector<VariableId>& a,
                                     const std::vector<VariableId>& b) {
  std::vector<VariableId> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

}  // namespace

JunctionTree::JunctionTree(const BayesianNetwork& net, const Evidence& evidence,
                           OrderingHeuristic heuristic)
    : net_(net), evidence_(evidence) {
  net_.validate();
  for (const auto& [v, state] : evidence_) {
    if (v >= net_.size())
      throw std::out_of_range("JunctionTree: evidence variable id");
    if (state >= net_.variable(v).cardinality())
      throw std::out_of_range("JunctionTree: evidence state index");
  }
  const obs::Span span("bayesnet.jt.calibrate");
  auto& metrics = JtMetrics::instance();
  const obs::HistogramTimer timer(metrics.calibration_seconds);
  // Timed directly as well: the obs histogram aggregates across trees,
  // while build_seconds() attributes this one build (and stays live
  // under SYSUQ_OBS=OFF for `explain`).
  const auto t0 = std::chrono::steady_clock::now();
  calibrate(heuristic);
  build_seconds_ =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  metrics.builds.inc();
  metrics.cliques.observe(static_cast<double>(cliques_.size()));
  metrics.max_clique_size.observe(static_cast<double>(max_clique_size_));
}

void JunctionTree::calibrate(OrderingHeuristic heuristic) {
  const std::size_t n = net_.size();
  std::vector<VariableId> keys;
  keys.reserve(evidence_.size());
  for (const auto& [v, _] : evidence_) keys.push_back(v);  // map: sorted

  // 1–2: moralize + triangulate via the shared ordering machinery, then
  // collect the elimination cliques and keep the maximal ones. A later
  // clique can only be subsumed by an earlier one (its eliminated vertex
  // is gone from all later graphs), so one backward containment scan
  // suffices.
  const EliminationOrdering ordering =
      compute_elimination_order(net_, /*keep=*/{}, keys, heuristic);
  const auto raw = elimination_cliques(net_, keys, ordering.order);
  for (std::size_t i = 0; i < raw.size(); ++i) {
    bool subsumed = false;
    for (std::size_t j = 0; j < i && !subsumed; ++j) {
      subsumed = std::includes(raw[j].begin(), raw[j].end(), raw[i].begin(),
                               raw[i].end());
    }
    if (!subsumed) cliques_.push_back(raw[i]);
  }
  for (const auto& clique : cliques_)
    max_clique_size_ = std::max(max_clique_size_, clique.size());

  // Degenerate case: every variable observed. The joint probability of
  // the evidence is the product of the fully reduced CPT constants.
  if (cliques_.empty()) {
    for (VariableId v = 0; v < n; ++v) {
      Factor f = net_.cpt_factor(v);
      for (const auto& [ev, state] : evidence_) {
        if (f.contains(ev)) f = f.reduce(ev, state);
      }
      const double t = f.total();
      if (!(t > 0.0)) {
        impossible_ = true;
        log_evidence_ = -std::numeric_limits<double>::infinity();
        return;
      }
      log_evidence_ += std::log(t);
    }
    marginals_.reserve(n);
    for (VariableId v = 0; v < n; ++v) {
      marginals_.push_back(prob::Categorical::delta(
          evidence_.at(v), net_.variable(v).cardinality()));
    }
    return;
  }

  // 3: clique tree as a deterministic maximum-weight spanning tree over
  // separator cardinalities (Prim from clique 0; ties break toward the
  // smallest clique index, then the smallest attachment index). For a
  // chordal graph any such tree has the running-intersection property.
  const std::size_t m = cliques_.size();
  std::vector<char> in_tree(m, 0);
  std::vector<std::size_t> parent(m, kNone);
  std::vector<std::size_t> order;  // insertion order: parents first
  order.reserve(m);
  in_tree[0] = 1;
  order.push_back(0);
  for (std::size_t step = 1; step < m; ++step) {
    std::size_t best_new = kNone;
    std::size_t best_attach = kNone;
    std::size_t best_w = 0;
    bool found = false;
    for (std::size_t i = 0; i < m; ++i) {
      if (in_tree[i]) continue;
      for (std::size_t j = 0; j < m; ++j) {
        if (!in_tree[j]) continue;
        const std::size_t w = intersection_size(cliques_[i], cliques_[j]);
        if (!found || w > best_w) {
          found = true;
          best_w = w;
          best_new = i;
          best_attach = j;
        }
      }
    }
    in_tree[best_new] = 1;
    parent[best_new] = best_attach;
    order.push_back(best_new);
  }
  std::vector<std::vector<std::size_t>> children(m);
  std::vector<std::vector<VariableId>> sep(m);
  for (std::size_t i = 0; i < m; ++i) {
    if (parent[i] == kNone) continue;
    children[parent[i]].push_back(i);
    sep[i] = intersection(cliques_[i], cliques_[parent[i]]);
  }

  // Potentials, messages, and beliefs are strided arena tables; only
  // the per-variable marginals are materialized at the end. One arena
  // frame spans the whole calibration (beliefs reference the messages).
  Arena& arena = kernels::thread_scratch();
  arena.reset();

  // 4: evidence absorption — every CPT factor, reduced by the evidence,
  // lands in the first clique covering its reduced scope (one exists:
  // each reduced family is a clique of the evidence-deleted moral graph).
  std::vector<Factor> owned;
  owned.reserve(n);
  std::vector<kernels::View> potential(m, kernels::unit_view());
  for (VariableId v = 0; v < n; ++v) {
    owned.push_back(net_.cpt_factor(v));
    kernels::View f = kernels::view_of(owned.back());
    for (const auto& [ev, state] : evidence_) {
      if (f.contains(ev)) f = kernels::reduce(f, ev, state, arena).view();
    }
    std::size_t home = kNone;
    for (std::size_t c = 0; c < m && home == kNone; ++c) {
      if (std::includes(cliques_[c].begin(), cliques_[c].end(), f.scope,
                        f.scope + f.rank)) {
        home = c;
      }
    }
    if (home == kNone)
      throw std::logic_error("JunctionTree: factor scope not covered");
    potential[home] = kernels::product(potential[home], f, arena).view();
  }

  // 5a: collect — leaves toward the root (reverse insertion order).
  // Each message is normalized as it flows and its log-normalizer
  // accumulated, so P(e) never underflows; an all-zero message means the
  // evidence is impossible (zeros only propagate outward).
  std::vector<kernels::View> up(m, kernels::unit_view());
  const auto give_up = [&] {
    impossible_ = true;
    log_evidence_ = -std::numeric_limits<double>::infinity();
    arena_high_water_ = kernels::thread_scratch().bytes_used();
    kernels::thread_scratch().reset();
  };
  for (std::size_t idx = m; idx-- > 1;) {
    const std::size_t i = order[idx];
    kernels::View b = potential[i];
    for (const std::size_t c : children[i])
      b = kernels::product(b, up[c], arena).view();
    kernels::Table msg = marginalize_to(b, sep[i], arena);
    const double t = kernels::total(msg.values, msg.size);
    if (!(t > 0.0)) return give_up();
    log_evidence_ += std::log(t);
    kernels::scale(msg.values, msg.size, 1.0 / t);
    up[i] = msg.view();
  }
  {
    kernels::View root = potential[order[0]];
    for (const std::size_t c : children[order[0]])
      root = kernels::product(root, up[c], arena).view();
    const double t = kernels::total(root.values, root.size);
    if (!(t > 0.0)) return give_up();
    log_evidence_ += std::log(t);
  }

  // 5b: distribute — root toward the leaves (insertion order). Messages
  // are normalized for stability only; per-variable marginals are
  // normalized at extraction, so the constants cancel.
  std::vector<kernels::View> down(m, kernels::unit_view());
  for (const std::size_t i : order) {
    if (children[i].empty()) continue;
    const kernels::View base =
        kernels::product(potential[i], down[i], arena).view();
    for (const std::size_t c : children[i]) {
      kernels::View b = base;
      for (const std::size_t c2 : children[i]) {
        if (c2 != c) b = kernels::product(b, up[c2], arena).view();
      }
      kernels::Table msg = marginalize_to(b, sep[c], arena);
      const double t = kernels::total(msg.values, msg.size);
      if (!(t > 0.0)) return give_up();  // unreachable when P(e) > 0
      kernels::scale(msg.values, msg.size, 1.0 / t);
      down[c] = msg.view();
    }
  }

  // 6: calibrated beliefs and eager marginal extraction. Each variable
  // reads off the first clique containing it.
  std::vector<kernels::View> belief;
  belief.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    kernels::View b = kernels::product(potential[i], down[i], arena).view();
    for (const std::size_t c : children[i])
      b = kernels::product(b, up[c], arena).view();
    belief.push_back(b);
  }
  std::vector<std::size_t> home(n, kNone);
  for (std::size_t c = 0; c < m; ++c) {
    for (const VariableId v : cliques_[c]) {
      if (home[v] == kNone) home[v] = c;
    }
  }
  marginals_.reserve(n);
  for (VariableId v = 0; v < n; ++v) {
    if (const auto it = evidence_.find(v); it != evidence_.end()) {
      marginals_.push_back(
          prob::Categorical::delta(it->second, net_.variable(v).cardinality()));
      continue;
    }
    if (home[v] == kNone)
      throw std::logic_error("JunctionTree: variable in no clique");
    const kernels::Table f = marginalize_to(belief[home[v]], {v}, arena);
    marginals_.push_back(prob::Categorical::normalized(
        std::vector<double>(f.values, f.values + f.size)));
  }
  arena_high_water_ = arena.bytes_used();
  arena.reset();
}

void JunctionTree::throw_impossible() const {
  throw std::domain_error(impossible_evidence_message(net_, evidence_));
}

prob::Categorical JunctionTree::query(VariableId v) const {
  if (v >= net_.size())
    throw std::out_of_range("JunctionTree::query: variable id");
  if (impossible_) throw_impossible();
  return marginals_[v];
}

const std::vector<prob::Categorical>& JunctionTree::all_marginals() const {
  if (impossible_) throw_impossible();
  return marginals_;
}

double JunctionTree::evidence_probability() const {
  return std::exp(log_evidence_);
}

}  // namespace sysuq::bayesnet
