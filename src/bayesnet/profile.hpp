// Query profiling: the structured result of `InferenceEngine::explain`.
//
// A `QueryProfile` is the engine's EXPLAIN ANALYZE — it answers the
// query *and* attributes its cost: which backend ran and why, the
// elimination plan step by step (factor widths and table sizes) or the
// calibrated tree's clique structure, whether the plan/tree came out of
// a cache, the scratch-arena high-water mark, and wall time per stage.
// Rendered two ways: `to_json()` (one line, fixed key order) for
// manifests and goldens, `to_plan()` for humans.
//
// Structure fields are deterministic for a fixed network, query and
// backend; the wall-clock and arena figures are measured and vary run
// to run — `zero_costs()` blanks exactly those, which is what the CLI's
// `--deterministic` flag and the byte-exact golden tests use.
//
// This header is plain data over the bayesnet layer: it works
// identically under `-DSYSUQ_OBS=OFF` (profiling is pull-based and
// costs nothing unless `explain` is called, so there is nothing to
// compile out).
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "bayesnet/network.hpp"

namespace sysuq::bayesnet {

/// One step of a variable-elimination run: the product factor
/// materialized when `variable` is summed out.
struct EliminationStepProfile {
  VariableId variable = 0;
  std::string name;             ///< variable name
  std::size_t width = 0;        ///< scope of the product factor minus the eliminated var
  std::size_t table_cells = 0;  ///< cells of the product factor (cost of the step)
};

/// One timed stage of answering a query (plan, execute, ...).
struct StageProfile {
  std::string stage;
  double seconds = 0.0;
};

/// The full cost attribution of one query. Produced by
/// `InferenceEngine::explain`; see the class comment for determinism.
struct QueryProfile {
  std::string query;  ///< query variable name
  std::vector<std::pair<std::string, std::string>> evidence;  ///< (var, state) names
  /// "variable_elimination" | "junction_tree" | "loopy_bp" | "evidence_delta"
  std::string backend;
  std::string backend_reason;

  // Variable-elimination plan (empty under the other backends).
  bool ordering_cache_hit = false;
  std::size_t induced_width = 0;
  std::size_t fill_edges = 0;
  std::vector<EliminationStepProfile> steps;

  // Junction-tree plan (empty under the other backends).
  bool jt_cache_hit = false;
  std::vector<std::size_t> clique_sizes;  ///< one per clique, tree order
  std::size_t max_clique_size = 0;
  double calibration_seconds = 0.0;  ///< the tree's build cost (0 when unknown)

  // Loopy-BP plan (empty under the other backends). Structure and
  // convergence figures are deterministic for fixed options; only
  // propagation_seconds is measured.
  bool bp_cache_hit = false;
  std::string schedule;          ///< "flooding"
  std::size_t bp_iterations = 0;
  bool bp_converged = false;
  double bp_damping = 0.0;
  double final_residual = 0.0;   ///< last iteration's max message delta
  double bound_width = 0.0;      ///< largest certified interval width
  double propagation_seconds = 0.0;  ///< the BP run's build cost

  // Measured cost.
  std::size_t arena_high_water_bytes = 0;
  std::vector<StageProfile> stages;
  double total_seconds = 0.0;

  // The answer (explain runs the query, EXPLAIN ANALYZE style).
  std::vector<std::string> states;
  std::vector<double> posterior;

  /// Blanks every measured figure (stage/total/calibration seconds and
  /// the arena high-water mark), keeping the plan; the result renders
  /// byte-identically across runs.
  void zero_costs();

  /// One-line JSON, fixed key order, shortest round-trip doubles.
  [[nodiscard]] std::string to_json() const;

  /// Human-readable plan, one stanza per section.
  [[nodiscard]] std::string to_plan() const;
};

/// Symbolic replay of a variable-elimination run: starting from the
/// network's CPT scopes with `evidence` variables reduced away, each
/// `order` variable not in `keep` is eliminated — every live scope
/// containing it merges into the step's product factor — and the step's
/// width and table size are recorded. This mirrors what
/// `kernels::eliminate_scaled` materializes without touching any
/// factor data, so `explain` can cost a plan exactly.
[[nodiscard]] std::vector<EliminationStepProfile> simulate_elimination(
    const BayesianNetwork& net, const Evidence& evidence,
    const std::vector<VariableId>& order, const std::vector<VariableId>& keep);

}  // namespace sysuq::bayesnet
