// Bayesian networks: directed acyclic graphs of discrete variables with
// conditional probability tables (CPTs).
//
// This is the graphical analysis model of the paper's Sec. V.B: "The BN is
// a Directed Acyclic Graph that consists of nodes and edges. Every node is
// a random variable... The effect of parent node on child node is
// determined by conditional probabilities."
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "bayesnet/factor.hpp"
#include "bayesnet/variable.hpp"
#include "prob/discrete.hpp"
#include "prob/rng.hpp"

namespace sysuq::bayesnet {

/// Evidence: observed states for a subset of variables.
using Evidence = std::map<VariableId, std::size_t>;

/// A discrete Bayesian network under construction and query.
///
/// Build protocol: add all variables, then attach one CPT per variable
/// with `set_cpt`. The network `validate()`s acyclicity and CPT coverage;
/// queries require a validated (complete) network.
class BayesianNetwork {
 public:
  /// Adds a variable; returns its id. Names must be unique.
  VariableId add_variable(Variable v);

  /// Convenience: adds a variable from name + state labels.
  VariableId add_variable(const std::string& name,
                          std::vector<std::string> states);

  /// Attaches the CPT P(child | parents). `rows` holds one categorical
  /// over the child's states per parent configuration, ordered with the
  /// *last* parent varying fastest (matching Factor layout). A root node
  /// passes empty `parents` and a single row (its prior).
  void set_cpt(VariableId child, std::vector<VariableId> parents,
               std::vector<prob::Categorical> rows);

  /// Number of variables.
  [[nodiscard]] std::size_t size() const { return nodes_.size(); }

  /// Variable access.
  [[nodiscard]] const Variable& variable(VariableId id) const;
  [[nodiscard]] VariableId id_of(const std::string& name) const;
  [[nodiscard]] bool has_variable(const std::string& name) const;

  /// Parents of a node (empty for roots); requires a CPT to be set.
  [[nodiscard]] const std::vector<VariableId>& parents(VariableId id) const;

  /// Children of a node.
  [[nodiscard]] std::vector<VariableId> children(VariableId id) const;

  /// The CPT row for a child given a full parent-state assignment
  /// (parallel to `parents(child)`).
  [[nodiscard]] const prob::Categorical& cpt_row(
      VariableId child, const std::vector<std::size_t>& parent_states) const;

  /// All CPT rows of a child (last parent fastest).
  [[nodiscard]] const std::vector<prob::Categorical>& cpt_rows(
      VariableId child) const;

  /// The CPT of `child` as a factor over {parents, child}.
  [[nodiscard]] Factor cpt_factor(VariableId child) const;

  /// Throws std::logic_error unless every variable has a CPT and the
  /// graph is acyclic.
  void validate() const;

  /// Topological order (parents before children); validates first.
  [[nodiscard]] std::vector<VariableId> topological_order() const;

  /// Total number of free parameters: sum over nodes of
  /// (#parent configurations) * (cardinality - 1). This is the quantity
  /// whose exponential growth the paper flags ("the number of parameters
  /// ... grows exponentially with the number of parent nodes").
  [[nodiscard]] std::size_t parameter_count() const;

  /// d-separation: true if X and Y are conditionally independent given Z
  /// in the graph structure (Bayes-ball algorithm).
  [[nodiscard]] bool d_separated(VariableId x, VariableId y,
                                 const std::vector<VariableId>& z) const;

  /// Draws a full joint sample in topological order.
  [[nodiscard]] std::vector<std::size_t> sample(prob::Rng& rng) const;

  /// Replaces the CPT rows of `child` keeping its parent set. Used by the
  /// uncertainty-removal loop when field observations update the model.
  void update_cpt_rows(VariableId child, std::vector<prob::Categorical> rows);

 private:
  struct Node {
    Variable var;
    std::optional<std::vector<VariableId>> parents;
    std::vector<prob::Categorical> rows;
  };

  std::vector<Node> nodes_;
  std::map<std::string, VariableId> by_name_;

  [[nodiscard]] std::size_t parent_config_count(VariableId child) const;
  [[nodiscard]] std::size_t row_index(
      VariableId child, const std::vector<std::size_t>& parent_states) const;
  void check_id(VariableId id) const;
};

}  // namespace sysuq::bayesnet
