// Loopy belief propagation with certified per-marginal error bounds.
//
// Third backend family next to VariableElimination and JunctionTree:
// flooding-schedule (synchronous / Jacobi) sum-product message passing
// on the factor graph of the evidence-reduced CPTs. Where the exact
// backends pay for treewidth — table sizes exponential in the largest
// clique — BP's cost is linear in the total CPT size per iteration, so
// it keeps answering on the treewidth-hostile networks where
// `simulate_elimination` predicts the exact backends would die
// (bench_cpt_explosion's regime, ROADMAP item 2).
//
// The price is exactness: on graphs with cycles the BP fixpoint is an
// approximation. Every posterior is therefore surfaced as a
// `BoundedPosterior` — the BP point estimate plus a *certified*
// interval guaranteed to contain the true posterior P(v | e):
//
//  * Markov-blanket convexity box (sound on every graph): by the law
//    of total probability, P(v=i | e) is a convex combination over
//    blanket configurations b of P(v=i | B=b, e), and the conditional
//    given the full blanket depends only on the factors touching v. We
//    enumerate blanket configurations exactly up to
//    `Options::max_blanket_configs` and take the min/max envelope;
//    past the cap a per-factor min/max relaxation bounds the same
//    quantity from outside.
//  * Dobrushin-style contraction estimate: per-factor dynamic ranges
//    D_f = max psi / min psi give contraction rates (D-1)/(D+1) and
//    log-range caps log D (Ihler-style strength bounds). Propagating
//    the final undamped message residuals through that contraction
//    system bounds the log-distance from the current messages to the
//    BP fixpoint. On an acyclic factor graph the fixpoint *is* the
//    true posterior, so there the contraction box certifies too and is
//    intersected with the blanket box; on loopy graphs it is reported
//    only through the interval when it agrees (the blanket box alone
//    is the certificate).
//
// The final interval is hulled with the point estimate, so the BP
// point always lies inside its own certified interval by construction.
//
// Schedule and determinism: one iteration updates every factor->var
// message from the previous iteration's var->factor messages (in
// factor-index, then scope-position order), then every var->factor
// message from the fresh factor->var messages. Damping
// m' = (1-lambda)*update + lambda*m applies to the factor->var half.
// The schedule is sequential and fixed, so posteriors are
// byte-identical across runs and independent of any thread count.
//
// Impossible evidence (P(e) = 0) is detected when a message or belief
// normalizes to zero mass (generalized arc consistency — sound, since
// message supports only shrink from factor zeros); the accessors then
// throw std::domain_error with `impossible_evidence_message`, the same
// per-query semantics as VE and the junction tree.
//
// Thread safety: all accessors are const and safe to call concurrently
// once the constructor returns (marginals and bounds are extracted
// eagerly). The object holds a reference to the network — the network
// must outlive it and must not be mutated while it is in use.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "bayesnet/factor.hpp"
#include "bayesnet/network.hpp"
#include "core/tolerance.hpp"
#include "prob/discrete.hpp"

namespace sysuq::bayesnet {

/// A posterior point estimate plus a certified interval that contains
/// the true posterior: lo[i] <= P(v = i | e) <= hi[i] for every state.
struct BoundedPosterior {
  /// The BP marginal estimate (default: a trivial one-state mass, so
  /// the struct is default-constructible for container use).
  prob::Categorical point{std::vector<double>{1.0}};
  std::vector<double> lo;   ///< certified lower bound per state
  std::vector<double> hi;   ///< certified upper bound per state
  bool converged = false;   ///< message passing reached tolerance

  /// Largest per-state interval width, max_i (hi[i] - lo[i]).
  [[nodiscard]] double width() const;

  /// True when every probs[i] lies inside [lo[i], hi[i]] (inclusive,
  /// within `slack` for floating-point edges).
  [[nodiscard]] bool contains(const std::vector<double>& probs,
                              double slack = tolerance::kTiny) const;
};

class LoopyBP {
 public:
  struct Options {
    /// Hard cap on flooding iterations (>= 1).
    std::size_t max_iterations = 500;
    /// Damping factor in [0, 1): m' = (1-damping)*update + damping*m.
    /// 0 is pure Jacobi; raise toward 0.5 on oscillating graphs.
    double damping = 0.0;
    /// Convergence threshold on the max absolute (undamped) message
    /// delta per iteration; must be > 0.
    double tolerance = sysuq::tolerance::kBpMessageDelta;
    /// Blanket configurations enumerated exactly for the convexity box
    /// before falling back to the per-factor relaxation (>= 1).
    std::size_t max_blanket_configs = 4096;
  };

  /// Runs message passing and bound extraction for `net` under
  /// `evidence`. Throws std::out_of_range for unknown evidence ids or
  /// states; evidence with probability zero surfaces as
  /// std::domain_error from the posterior accessors.
  explicit LoopyBP(const BayesianNetwork& net, const Evidence& evidence = {});
  LoopyBP(const BayesianNetwork& net, const Evidence& evidence,
          Options options);

  [[nodiscard]] const BayesianNetwork& network() const { return net_; }
  [[nodiscard]] const Evidence& evidence() const { return evidence_; }

  /// Bounded posterior of `v` (an observed variable returns its delta
  /// with a zero-width interval). Throws std::domain_error with
  /// `impossible_evidence_message` if P(evidence) = 0.
  [[nodiscard]] const BoundedPosterior& query(VariableId v) const;

  /// All bounded posteriors, indexed by VariableId. Throws like
  /// `query` on impossible evidence.
  [[nodiscard]] const std::vector<BoundedPosterior>& all_marginals() const;

  // --- run diagnostics, for explain()/obs/benches ---

  /// True when the last residual fell below Options::tolerance before
  /// the iteration cap.
  [[nodiscard]] bool converged() const { return converged_; }
  /// Flooding iterations actually run.
  [[nodiscard]] std::size_t iterations() const { return iterations_; }
  /// Max absolute undamped message delta of the final iteration.
  [[nodiscard]] double final_residual() const { return final_residual_; }
  /// Largest certified interval width over all unobserved variables
  /// (0 when the evidence is impossible).
  [[nodiscard]] double max_bound_width() const { return max_bound_width_; }
  /// True when the evidence-reduced factor graph is acyclic (BP exact).
  [[nodiscard]] bool acyclic() const { return acyclic_; }
  /// The fixed message schedule's name ("flooding").
  [[nodiscard]] static const char* schedule() { return "flooding"; }
  /// Wall seconds the constructor spent in message passing + bounds.
  [[nodiscard]] double build_seconds() const { return build_seconds_; }
  /// Scratch-arena bytes live at the run's peak.
  [[nodiscard]] std::size_t arena_high_water_bytes() const {
    return arena_high_water_;
  }

 private:
  // One directed edge pair of the factor graph: factor `factor` <->
  // variable `var` (position `pos` in the factor's reduced scope).
  struct Edge {
    std::size_t factor = 0;
    VariableId var = 0;
    std::size_t pos = 0;
    std::vector<double> to_var;     // m_{factor -> var}, normalized
    std::vector<double> to_factor;  // m_{var -> factor}, normalized
    // Log dynamic range of factor `factor` restricted as seen from
    // this edge, and the final undamped update's log-range residual —
    // inputs to the contraction system.
    double residual_log_range = 0.0;
    double fixpoint_eps = 0.0;  // certified log-range to the fixpoint
  };

  const BayesianNetwork& net_;
  Evidence evidence_;
  Options options_;
  std::vector<Factor> factors_;        // evidence-reduced, scalars dropped
  std::vector<Edge> edges_;            // factor-index then scope order
  std::vector<std::vector<std::size_t>> edges_of_var_;  // var -> edge ids
  std::vector<BoundedPosterior> marginals_;             // one per variable
  bool impossible_ = false;
  bool converged_ = false;
  bool acyclic_ = false;
  std::size_t iterations_ = 0;
  double final_residual_ = 0.0;
  double max_bound_width_ = 0.0;
  double build_seconds_ = 0.0;
  std::size_t arena_high_water_ = 0;

  void build_factor_graph();
  void run_message_passing();
  void extract_marginals();
  void certify_bounds();
  [[noreturn]] void throw_impossible() const;
};

}  // namespace sysuq::bayesnet
