#include "bayesnet/arena.hpp"

#include <algorithm>
#include <cstdint>

#include "core/contracts.hpp"

namespace sysuq::bayesnet {

Arena::Arena(std::size_t initial_bytes) {
  add_chunk(std::max<std::size_t>(initial_bytes, 64));
}

Arena::~Arena() = default;

std::size_t Arena::checked_array_bytes(std::size_t n, std::size_t elem_size) {
  SYSUQ_EXPECT(elem_size == 0 || n <= SIZE_MAX / elem_size,
               "Arena::alloc: element count overflows size_t");
  return n * elem_size;
}

void* Arena::allocate(std::size_t bytes, std::size_t align) {
  SYSUQ_EXPECT(align != 0 && (align & (align - 1)) == 0 &&
                   align <= alignof(std::max_align_t),
               "Arena::allocate: alignment must be a power of two no larger "
               "than max_align_t");
  Chunk* chunk = &chunks_.back();
  std::size_t offset = (chunk->offset + align - 1) & ~(align - 1);
  if (bytes > chunk->size || offset > chunk->size - bytes) {
    // Double the largest chunk so the amortized malloc count stays
    // logarithmic in the peak footprint.
    add_chunk(std::max(bytes + align, chunks_.back().size * 2));
    chunk = &chunks_.back();
    offset = (chunk->offset + align - 1) & ~(align - 1);
  }
  chunk->offset = offset + bytes;
  used_ += bytes;
  return chunk->data.get() + offset;
}

void Arena::reset() {
  // Keep only the largest chunk (always the back one: chunks grow
  // geometrically), rewound to empty.
  if (chunks_.size() > 1) {
    chunks_.front() = std::move(chunks_.back());
    chunks_.resize(1);
  }
  chunks_.front().offset = 0;
  capacity_ = chunks_.front().size;
  used_ = 0;
}

void Arena::add_chunk(std::size_t min_bytes) {
  Chunk c;
  c.size = min_bytes;
  c.data = std::make_unique<std::byte[]>(c.size);
  c.offset = 0;
  capacity_ += c.size;
  chunks_.push_back(std::move(c));
}

}  // namespace sysuq::bayesnet
