#include "bayesnet/variable.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "core/contracts.hpp"

namespace sysuq::bayesnet {

Variable::Variable(std::string name, std::vector<std::string> states)
    : name_(std::move(name)), states_(std::move(states)) {
  SYSUQ_EXPECT(!name_.empty(), "Variable: empty name");
  SYSUQ_EXPECT(states_.size() >= 2,
               "Variable '" + name_ + "': need >= 2 states");
  std::unordered_set<std::string> seen;
  for (const auto& s : states_) {
    SYSUQ_EXPECT(!s.empty(), "Variable '" + name_ + "': empty state label");
    SYSUQ_EXPECT(seen.insert(s).second,
                 "Variable '" + name_ + "': duplicate state '" + s + "'");
  }
}

const std::string& Variable::state_name(std::size_t i) const {
  if (i >= states_.size())
    throw std::out_of_range("Variable '" + name_ + "': state index");
  return states_[i];
}

std::size_t Variable::state_index(const std::string& label) const {
  const auto it = std::find(states_.begin(), states_.end(), label);
  if (it == states_.end())
    throw std::invalid_argument("Variable '" + name_ + "': no state '" + label +
                                "'");
  return static_cast<std::size_t>(std::distance(states_.begin(), it));
}

bool Variable::has_state(const std::string& label) const {
  return std::find(states_.begin(), states_.end(), label) != states_.end();
}

}  // namespace sysuq::bayesnet
