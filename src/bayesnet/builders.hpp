// CPT construction techniques that tame the exponential parameter growth
// the paper flags in Sec. V.B ("several techniques to deal with this
// problem are available" — citing Fenton et al. ranked nodes among them).
#pragma once

#include <cstddef>
#include <vector>

#include "prob/discrete.hpp"

namespace sysuq::bayesnet {

/// Noisy-OR CPT for a binary child with n binary parents: the child fires
/// if any active parent's independent cause fires.
///
///   P(child=1 | parents) = 1 - (1 - leak) * prod_{i active} (1 - p_i)
///
/// Parameter count is n + 1 instead of 2^n. Rows are ordered with the last
/// parent varying fastest; child states are {false, true}.
[[nodiscard]] std::vector<prob::Categorical> noisy_or_cpt(
    const std::vector<double>& link_probabilities, double leak = 0.0);

/// Ranked-node CPT (Fenton, Neil & Caballero 2007): child and parents are
/// ordinal variables mapped onto [0, 1]; each parent configuration yields
/// a child distribution by discretizing a truncated normal whose mean is
/// the weighted mean of the parent rank midpoints.
///
/// `parent_cards` — cardinality of each (ordinal) parent;
/// `weights`      — non-negative importance weights, one per parent;
/// `child_card`   — number of child ranks;
/// `sigma`        — spread of the truncated normal (> 0; small = parents
///                  determine the child sharply).
/// Returns rows ordered with the last parent varying fastest.
[[nodiscard]] std::vector<prob::Categorical> ranked_node_cpt(
    const std::vector<std::size_t>& parent_cards,
    const std::vector<double>& weights, std::size_t child_card, double sigma);

/// Parameters a full CPT would need for the same shape (for reporting the
/// compression factor in the E11 ablation): (#parent configs) * (k - 1).
[[nodiscard]] std::size_t full_cpt_parameter_count(
    const std::vector<std::size_t>& parent_cards, std::size_t child_card);

}  // namespace sysuq::bayesnet
