// Textual export of Bayesian networks: Graphviz DOT for structure and an
// ASCII CPT rendering matching the paper's Table I layout.
#pragma once

#include <string>

#include "bayesnet/network.hpp"

namespace sysuq::bayesnet {

/// Graphviz DOT source for the network structure.
[[nodiscard]] std::string to_dot(const BayesianNetwork& net);

/// ASCII rendering of one node's CPT: one row per parent configuration,
/// one column per child state — the layout of the paper's Table I.
[[nodiscard]] std::string cpt_table(const BayesianNetwork& net, VariableId child);

/// Multi-line summary: nodes, edges, parameter count.
[[nodiscard]] std::string describe(const BayesianNetwork& net);

}  // namespace sysuq::bayesnet
