// Flat strided factor kernels.
//
// Factor product / marginalize / reduce is the hot path under every
// inference backend. The Factor class keeps its safe, owning API; the
// kernels here are the engine room it delegates to: contiguous tables
// addressed through precomputed stride tables, so the inner loops touch
// memory linearly with no per-cell index recomputation and no per-cell
// bounds checks. Scopes are validated once at kernel entry
// (SYSUQ_EXPECT), never per cell.
//
// Layout contract (same as Factor): a table over a sorted scope is
// row-major with the *last* scope variable varying fastest. Because
// scopes are sorted, the fastest-varying dimension of any merged scope
// is also the fastest-varying dimension of each operand that contains
// it — every inner loop is contiguous (stride 1) or a broadcast
// (stride 0), which is what the auto-vectorizer needs.
//
// Intermediate tables live in a bump Arena (bayesnet/arena.hpp); only
// final results are materialized as owning Factors. Log-space variants
// (log_product / log_marginalize = log-sum-exp) and scaled elimination
// (per-round renormalization with an accumulated log normalizer) let
// callers survive deep-evidence underflow without paying repeated
// normalization in the linear hot path.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

#include "bayesnet/arena.hpp"
#include "bayesnet/factor.hpp"

namespace sysuq::bayesnet::kernels {

/// Maximum factor rank the kernels accept (stride/counter tables are
/// stack-allocated). A table over this many non-trivial variables could
/// not fit in memory anyway; checked once per kernel call.
inline constexpr std::size_t kMaxRank = 64;

/// True when a * b overflows std::size_t.
// sysuq-lint-allow(contract-coverage): total predicate over any two sizes
[[nodiscard]] bool mul_overflows(std::size_t a, std::size_t b) noexcept;

/// Product of `cards[0..rank)` with an overflow contract: SYSUQ_EXPECT
/// fires (naming `what`) instead of silently wrapping size_t.
[[nodiscard]] std::size_t checked_table_size(const std::size_t* cards,
                                             std::size_t rank,
                                             const char* what);

/// Non-owning view of a factor table: sorted scope, parallel
/// cardinalities, row-major values (last variable fastest).
struct View {
  const VariableId* scope = nullptr;
  const std::size_t* cards = nullptr;
  const double* values = nullptr;
  std::size_t rank = 0;
  std::size_t size = 0;

  /// True if `v` appears in the (sorted) scope.
  [[nodiscard]] bool contains(VariableId v) const noexcept;
};

/// View of an owning Factor (valid while the Factor lives).
// sysuq-lint-allow(contract-coverage): total over any Factor (its ctor already validated)
[[nodiscard]] View view_of(const Factor& f);

/// The constant-1 scalar view (rank 0). Backed by static storage.
[[nodiscard]] View unit_view() noexcept;

/// Arena-owned table: mutable values plus scope metadata, all allocated
/// from the Arena. Valid until the arena is reset.
struct Table {
  VariableId* scope = nullptr;
  std::size_t* cards = nullptr;
  double* values = nullptr;
  std::size_t rank = 0;
  std::size_t size = 0;

  [[nodiscard]] View view() const noexcept {
    return View{scope, cards, values, rank, size};
  }
};

/// Allocates an uninitialized table over `scope`/`cards` (copied into
/// the arena). Size is overflow-checked.
[[nodiscard]] Table make_table(const VariableId* scope,
                               const std::size_t* cards, std::size_t rank,
                               Arena& arena);

/// Merges two sorted scopes into `scope`/`cards` (caller buffers of
/// capacity a.rank + b.rank); returns the merged rank. SYSUQ_EXPECT on
/// cardinality mismatch of shared variables.
[[nodiscard]] std::size_t merge_scopes(const View& a, const View& b,
                                       VariableId* scope, std::size_t* cards);

/// Pointwise product over the merged scope `scope`/`cards[0..rank)`
/// (as produced by merge_scopes); writes prod(cards) values to `out`.
void product_into(const View& a, const View& b, const VariableId* scope,
                  const std::size_t* cards, std::size_t rank, double* out);

/// Arena-allocated product (merged scope computed internally).
[[nodiscard]] Table product(const View& a, const View& b, Arena& arena);

/// Sums out the scope variable at position `drop_pos`; `out` must hold
/// f.size / f.cards[drop_pos] values (zero-initialized by the kernel).
void marginalize_into(const View& f, std::size_t drop_pos, double* out);

/// Sums out every scope variable NOT in `keep` (sorted, a subset of the
/// scope) in one pass; `out` must hold prod(kept cards) values
/// (zero-initialized by the kernel).
void marginalize_keep_into(const View& f, const VariableId* keep,
                           std::size_t nkeep, double* out);

/// Arena-allocated multi-variable marginalization.
[[nodiscard]] Table marginalize_keep(const View& f, const VariableId* keep,
                                     std::size_t nkeep, Arena& arena);

/// Restricts the scope variable at position `pos` to `state`; the
/// variable leaves the scope. `out` must hold f.size / f.cards[pos]
/// values.
void reduce_into(const View& f, std::size_t pos, std::size_t state,
                 double* out);

/// Arena-allocated reduction by VariableId (must be in the scope).
[[nodiscard]] Table reduce(const View& f, VariableId v, std::size_t state,
                           Arena& arena);

/// Sum of `n` values by pairwise (cascade) summation: error grows
/// O(log n) in the term count instead of O(n) for a naive left fold.
// sysuq-lint-allow(contract-coverage): total linear sum over any span
[[nodiscard]] double total(const double* values, std::size_t n) noexcept;

/// Multiplies every value by `s` in place.
// sysuq-lint-allow(contract-coverage): total in-place map over any span
void scale(double* values, std::size_t n, double s) noexcept;

// ---------------------------------------------------------------------
// Log-space kernels. Tables hold log-potentials; zero mass is -inf.

/// Elementwise log: log(0) = -inf. SYSUQ_EXPECT rejects negatives.
void to_log(const double* in, std::size_t n, double* out);

/// Elementwise exp into `out`.
// sysuq-lint-allow(contract-coverage): total elementwise map over any span
void from_log(const double* in, std::size_t n, double* out) noexcept;

/// Log-space product (elementwise addition) over the merged scope, as
/// product_into.
void log_product_into(const View& a, const View& b, const VariableId* scope,
                      const std::size_t* cards, std::size_t rank, double* out);

/// Log-space marginalization of every variable not in `keep`: per output
/// cell a max-shifted log-sum-exp, so P(e) ~ 1e-5000 stays finite.
/// Uses `arena` for the per-cell running-max scratch.
void log_marginalize_keep_into(const View& f, const VariableId* keep,
                               std::size_t nkeep, Arena& arena, double* out);

/// log(sum(exp(values))) with max shifting; -inf for an all - (-inf)
/// table.
[[nodiscard]] double log_total(const double* values, std::size_t n) noexcept;

// ---------------------------------------------------------------------
// Scaled elimination: the production path under VE.

/// Result of a scaled elimination run: `factor` is the eliminated
/// table with `log_scale` = log of the total mass factored out by the
/// per-round renormalizations, so the true (linear) result is
/// factor * exp(log_scale). Rescaling triggers only when an
/// intermediate total leaves [kRescaleFloor, 1/kRescaleFloor], so
/// ordinary queries reproduce the unscaled arithmetic bit for bit while
/// deep-evidence chains cannot underflow to exact zero.
struct ScaledFactor {
  Factor factor;
  double log_scale = 0.0;

  /// log of the true total mass: log_scale + log(factor.total()).
  [[nodiscard]] double log_total() const;

  /// True when the evidence baked into the eliminated factors has
  /// exactly zero probability (a genuinely all-zero message, not
  /// underflow): log_total() == -inf.
  [[nodiscard]] bool impossible() const {
    return !(log_total() > -std::numeric_limits<double>::infinity());
  }
};

/// Runs variable elimination over `factors` following `order` with
/// per-round rescaling (see ScaledFactor). Views must outlive the call;
/// intermediates live in `arena` (caller resets it afterwards). An
/// all-zero intermediate short-circuits to an impossible result (a zero
/// scalar factor with log_scale = -inf).
[[nodiscard]] ScaledFactor eliminate_scaled(std::vector<View> factors,
                                            const std::vector<VariableId>& order,
                                            Arena& arena);

/// Legacy-semantics elimination: no rescaling, no short-circuit; the
/// returned factor's total is the raw linear mass (which may underflow,
/// exactly as the historical mixed-radix path did). Kept for
/// eliminate_with_order compatibility.
[[nodiscard]] Factor eliminate_linear(std::vector<View> factors,
                                      const std::vector<VariableId>& order,
                                      Arena& arena);

/// Per-thread scratch arena for the inference hot paths. Reset it at
/// the top of each query/calibration frame; never hold tables across a
/// frame boundary or share them between threads.
[[nodiscard]] Arena& thread_scratch();

}  // namespace sysuq::bayesnet::kernels
