#include "bayesnet/network.hpp"

#include <algorithm>
#include <queue>
#include <set>
#include <stdexcept>

#include "core/contracts.hpp"

namespace sysuq::bayesnet {

VariableId BayesianNetwork::add_variable(Variable v) {
  SYSUQ_EXPECT(!by_name_.contains(v.name()),
               "BayesianNetwork: duplicate variable '" + v.name() + "'");
  const VariableId id = nodes_.size();
  by_name_.emplace(v.name(), id);
  nodes_.push_back(Node{std::move(v), std::nullopt, {}});
  return id;
}

VariableId BayesianNetwork::add_variable(const std::string& name,
                                         std::vector<std::string> states) {
  return add_variable(Variable(name, std::move(states)));
}

void BayesianNetwork::check_id(VariableId id) const {
  if (id >= nodes_.size())
    throw std::out_of_range("BayesianNetwork: bad variable id");
}

std::size_t BayesianNetwork::parent_config_count(VariableId child) const {
  std::size_t n = 1;
  for (VariableId p : *nodes_[child].parents)
    n *= nodes_[p].var.cardinality();
  return n;
}

void BayesianNetwork::set_cpt(VariableId child, std::vector<VariableId> parents,
                              std::vector<prob::Categorical> rows) {
  check_id(child);
  std::set<VariableId> seen;
  for (VariableId p : parents) {
    check_id(p);
    SYSUQ_EXPECT(p != child, "BayesianNetwork::set_cpt: self-parent");
    SYSUQ_EXPECT(seen.insert(p).second,
                 "BayesianNetwork::set_cpt: duplicate parent");
  }
  // Validate before mutating so a failed set_cpt leaves any previous CPT
  // assignment intact (strong exception guarantee; the old code reset the
  // parent list before throwing).
  std::size_t expect = 1;
  for (VariableId p : parents) expect *= nodes_[p].var.cardinality();
  SYSUQ_EXPECT(rows.size() == expect,
               "BayesianNetwork::set_cpt: expected " + std::to_string(expect) +
                   " rows, got " + std::to_string(rows.size()));
  for (const auto& r : rows) {
    SYSUQ_EXPECT(r.size() == nodes_[child].var.cardinality(),
                 "BayesianNetwork::set_cpt: row size != child cardinality");
  }
  nodes_[child].parents = std::move(parents);
  nodes_[child].rows = std::move(rows);
}

const Variable& BayesianNetwork::variable(VariableId id) const {
  check_id(id);
  return nodes_[id].var;
}

VariableId BayesianNetwork::id_of(const std::string& name) const {
  const auto it = by_name_.find(name);
  if (it == by_name_.end())
    throw std::invalid_argument("BayesianNetwork: no variable '" + name + "'");
  return it->second;
}

bool BayesianNetwork::has_variable(const std::string& name) const {
  return by_name_.contains(name);
}

const std::vector<VariableId>& BayesianNetwork::parents(VariableId id) const {
  check_id(id);
  if (!nodes_[id].parents)
    throw std::logic_error("BayesianNetwork: CPT not set for '" +
                           nodes_[id].var.name() + "'");
  return *nodes_[id].parents;
}

std::vector<VariableId> BayesianNetwork::children(VariableId id) const {
  check_id(id);
  std::vector<VariableId> out;
  for (VariableId c = 0; c < nodes_.size(); ++c) {
    if (!nodes_[c].parents) continue;
    const auto& ps = *nodes_[c].parents;
    if (std::find(ps.begin(), ps.end(), id) != ps.end()) out.push_back(c);
  }
  return out;
}

std::size_t BayesianNetwork::row_index(
    VariableId child, const std::vector<std::size_t>& parent_states) const {
  const auto& ps = parents(child);
  if (parent_states.size() != ps.size())
    throw std::invalid_argument("BayesianNetwork: parent state count mismatch");
  std::size_t idx = 0;
  for (std::size_t i = 0; i < ps.size(); ++i) {
    const std::size_t card = nodes_[ps[i]].var.cardinality();
    if (parent_states[i] >= card)
      throw std::out_of_range("BayesianNetwork: parent state out of range");
    idx = idx * card + parent_states[i];
  }
  return idx;
}

const prob::Categorical& BayesianNetwork::cpt_row(
    VariableId child, const std::vector<std::size_t>& parent_states) const {
  return nodes_[child].rows[row_index(child, parent_states)];
}

const std::vector<prob::Categorical>& BayesianNetwork::cpt_rows(
    VariableId child) const {
  check_id(child);
  if (!nodes_[child].parents)
    throw std::logic_error("BayesianNetwork: CPT not set for '" +
                           nodes_[child].var.name() + "'");
  return nodes_[child].rows;
}

Factor BayesianNetwork::cpt_factor(VariableId child) const {
  const auto& ps = parents(child);

  // Factor scope must be sorted by id; CPT layout is (parents..., child)
  // with last varying fastest. Build the factor by enumerating the CPT and
  // scattering into the sorted layout.
  std::vector<VariableId> scope = ps;
  scope.push_back(child);
  std::vector<VariableId> sorted = scope;
  std::sort(sorted.begin(), sorted.end());

  std::vector<std::size_t> sorted_cards(sorted.size());
  for (std::size_t i = 0; i < sorted.size(); ++i)
    sorted_cards[i] = nodes_[sorted[i]].var.cardinality();

  std::size_t total = 1;
  for (std::size_t c : sorted_cards) total *= c;
  std::vector<double> values(total, 0.0);

  // position of each scope var in the sorted scope
  std::vector<std::size_t> pos(scope.size());
  for (std::size_t i = 0; i < scope.size(); ++i) {
    pos[i] = static_cast<std::size_t>(
        std::lower_bound(sorted.begin(), sorted.end(), scope[i]) -
        sorted.begin());
  }

  const std::size_t child_card = nodes_[child].var.cardinality();
  std::vector<std::size_t> pstate(ps.size(), 0);
  const std::size_t nrows = nodes_[child].rows.size();
  std::vector<std::size_t> sorted_state(sorted.size(), 0);
  for (std::size_t r = 0; r < nrows; ++r) {
    for (std::size_t cstate = 0; cstate < child_card; ++cstate) {
      for (std::size_t i = 0; i < ps.size(); ++i)
        sorted_state[pos[i]] = pstate[i];
      sorted_state[pos[ps.size()]] = cstate;
      std::size_t flat = 0;
      for (std::size_t i = 0; i < sorted.size(); ++i)
        flat = flat * sorted_cards[i] + sorted_state[i];
      values[flat] = nodes_[child].rows[r].p(cstate);
    }
    // advance parent mixed-radix counter (last parent fastest)
    for (std::size_t k = ps.size(); k-- > 0;) {
      if (++pstate[k] < nodes_[ps[k]].var.cardinality()) break;
      pstate[k] = 0;
    }
  }
  return Factor(std::move(sorted), std::move(sorted_cards), std::move(values));
}

void BayesianNetwork::validate() const {
  SYSUQ_EXPECT(!nodes_.empty(), "BayesianNetwork::validate: empty network");
  for (const auto& n : nodes_) {
    SYSUQ_EXPECT(n.parents.has_value(),
                 "BayesianNetwork::validate: CPT missing for '" +
                     n.var.name() + "'");
  }
  (void)topological_order();  // throws on cycles
}

std::vector<VariableId> BayesianNetwork::topological_order() const {
  std::vector<std::size_t> indegree(nodes_.size(), 0);
  for (VariableId c = 0; c < nodes_.size(); ++c) {
    if (!nodes_[c].parents)
      throw std::logic_error("BayesianNetwork: CPT missing for '" +
                             nodes_[c].var.name() + "'");
    indegree[c] = nodes_[c].parents->size();
  }
  std::queue<VariableId> ready;
  for (VariableId v = 0; v < nodes_.size(); ++v) {
    if (indegree[v] == 0) ready.push(v);
  }
  std::vector<VariableId> order;
  order.reserve(nodes_.size());
  while (!ready.empty()) {
    const VariableId v = ready.front();
    ready.pop();
    order.push_back(v);
    for (VariableId c = 0; c < nodes_.size(); ++c) {
      const auto& ps = *nodes_[c].parents;
      for (VariableId p : ps) {
        if (p == v && --indegree[c] == 0) ready.push(c);
      }
    }
  }
  if (order.size() != nodes_.size())
    throw std::logic_error("BayesianNetwork: graph contains a cycle");
  return order;
}

std::size_t BayesianNetwork::parameter_count() const {
  std::size_t total = 0;
  for (VariableId v = 0; v < nodes_.size(); ++v) {
    if (!nodes_[v].parents)
      throw std::logic_error("BayesianNetwork: CPT missing");
    total += parent_config_count(v) * (nodes_[v].var.cardinality() - 1);
  }
  return total;
}

bool BayesianNetwork::d_separated(VariableId x, VariableId y,
                                  const std::vector<VariableId>& z) const {
  check_id(x);
  check_id(y);
  if (x == y) return false;
  std::set<VariableId> zset(z.begin(), z.end());

  // Bayes-ball: compute ancestors of Z, then BFS over (node, direction).
  std::set<VariableId> z_ancestors = zset;
  {
    std::queue<VariableId> q;
    for (VariableId v : zset) q.push(v);
    while (!q.empty()) {
      const VariableId v = q.front();
      q.pop();
      for (VariableId p : parents(v)) {
        if (z_ancestors.insert(p).second) q.push(p);
      }
    }
  }

  // direction: true = visiting from a child (upward), false = from parent.
  std::set<std::pair<VariableId, bool>> visited;
  std::queue<std::pair<VariableId, bool>> q;
  q.push({x, true});
  while (!q.empty()) {
    const auto [v, up] = q.front();
    q.pop();
    if (!visited.insert({v, up}).second) continue;
    if (v == y) return false;  // active path reaches y

    if (up && !zset.contains(v)) {
      // Arrived from a child; can continue up to parents and down to children.
      for (VariableId p : parents(v)) q.push({p, true});
      for (VariableId c : children(v)) q.push({c, false});
    } else if (!up) {
      if (!zset.contains(v)) {
        // Arrived from a parent via a chain; continue to children.
        for (VariableId c : children(v)) q.push({c, false});
      }
      if (z_ancestors.contains(v)) {
        // v is (an ancestor of) evidence: collider path may open upward.
        for (VariableId p : parents(v)) q.push({p, true});
      }
    }
  }
  return true;
}

std::vector<std::size_t> BayesianNetwork::sample(prob::Rng& rng) const {
  const auto order = topological_order();
  std::vector<std::size_t> state(nodes_.size(), 0);
  for (VariableId v : order) {
    const auto& ps = *nodes_[v].parents;
    std::vector<std::size_t> pstates(ps.size());
    for (std::size_t i = 0; i < ps.size(); ++i) pstates[i] = state[ps[i]];
    state[v] = cpt_row(v, pstates).sample(rng);
  }
  return state;
}

void BayesianNetwork::update_cpt_rows(VariableId child,
                                      std::vector<prob::Categorical> rows) {
  check_id(child);
  SYSUQ_EXPECT(nodes_[child].parents.has_value(),
               "BayesianNetwork::update_cpt_rows: CPT not set");
  SYSUQ_EXPECT(rows.size() == nodes_[child].rows.size(),
               "BayesianNetwork::update_cpt_rows: row count");
  for (const auto& r : rows) {
    SYSUQ_EXPECT(r.size() == nodes_[child].var.cardinality(),
                 "BayesianNetwork::update_cpt_rows: row size");
  }
  nodes_[child].rows = std::move(rows);
}

}  // namespace sysuq::bayesnet
