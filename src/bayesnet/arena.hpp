// Bump arena for per-query factor scratch.
//
// Variable elimination and junction-tree calibration create a storm of
// short-lived factor tables whose lifetimes all end together (when the
// query or the calibration finishes). A bump arena turns that churn of
// std::vector allocations into pointer arithmetic: allocate() is O(1),
// nothing is freed individually, and reset() recycles the arena's
// capacity for the next round. The flat kernels (bayesnet/kernels)
// place every intermediate table in an arena and materialize only the
// final result as an owning Factor.
#pragma once

#include <cstddef>
#include <memory>
#include <type_traits>
#include <vector>

namespace sysuq::bayesnet {

/// A chunked bump allocator. Storage is handed out front-to-back from
/// geometrically growing chunks; pointers stay valid until reset() or
/// destruction. Not thread-safe — use one Arena per query / calibration
/// (the inference paths keep one per thread), never share across
/// threads.
// sysuq-thread-confined(owner)
class Arena {
 public:
  /// Default capacity of the first chunk (bytes).
  static constexpr std::size_t kDefaultChunkBytes = 64 * 1024;

  // sysuq-lint-allow(contract-coverage): any size is valid; tiny requests are rounded up
  explicit Arena(std::size_t initial_bytes = kDefaultChunkBytes);
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Allocates `bytes` aligned to `align` (a power of two no larger
  /// than alignof(std::max_align_t)). The storage is uninitialized and
  /// lives until reset() or destruction.
  [[nodiscard]] void* allocate(std::size_t bytes, std::size_t align);

  /// Typed allocation of `n` uninitialized T (T must be trivially
  /// destructible — the arena never runs destructors). The element
  /// count is overflow-checked against SIZE_MAX / sizeof(T).
  template <typename T>
  [[nodiscard]] T* alloc(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena::alloc: arena storage is never destructed");
    return static_cast<T*>(allocate(checked_array_bytes(n, sizeof(T)),
                                    alignof(T)));
  }

  /// Retires every allocation. The largest chunk is kept so a
  /// steady-state workload stops touching malloc; the rest are freed.
  void reset();

  /// Bytes handed out since construction or the last reset().
  [[nodiscard]] std::size_t bytes_used() const { return used_; }

  /// Total capacity currently held (all chunks).
  [[nodiscard]] std::size_t bytes_capacity() const { return capacity_; }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    std::size_t offset = 0;
  };

  /// n * elem_size with an overflow contract (SYSUQ_EXPECT).
  [[nodiscard]] static std::size_t checked_array_bytes(std::size_t n,
                                                       std::size_t elem_size);

  void add_chunk(std::size_t min_bytes);

  std::vector<Chunk> chunks_;
  std::size_t used_ = 0;
  std::size_t capacity_ = 0;
};

}  // namespace sysuq::bayesnet
