#include "bayesnet/serialize.hpp"

#include <sstream>
#include <stdexcept>

namespace sysuq::bayesnet {

namespace {

bool has_whitespace(const std::string& s) {
  return s.find_first_of(" \t\n\r") != std::string::npos;
}

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw std::invalid_argument("bayesnet::from_text: line " +
                              std::to_string(line) + ": " + what);
}

}  // namespace

std::string to_text(const BayesianNetwork& net) {
  net.validate();
  std::ostringstream os;
  os << "sysuq-bayesnet 1\n";
  for (VariableId v = 0; v < net.size(); ++v) {
    const auto& var = net.variable(v);
    if (has_whitespace(var.name()))
      throw std::invalid_argument("bayesnet::to_text: name with whitespace: '" +
                                  var.name() + "'");
    os << "variable " << var.name();
    for (const auto& s : var.states()) {
      if (has_whitespace(s))
        throw std::invalid_argument(
            "bayesnet::to_text: state with whitespace: '" + s + "'");
      os << ' ' << s;
    }
    os << '\n';
  }
  os.precision(17);
  for (VariableId v = 0; v < net.size(); ++v) {
    os << "cpt " << net.variable(v).name() << " |";
    for (VariableId p : net.parents(v)) os << ' ' << net.variable(p).name();
    os << '\n';
    for (const auto& row : net.cpt_rows(v)) {
      for (std::size_t s = 0; s < row.size(); ++s)
        os << (s == 0 ? "" : " ") << row.p(s);
      os << '\n';
    }
  }
  return os.str();
}

BayesianNetwork from_text(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  std::size_t lineno = 0;

  const auto next_tokens = [&](std::vector<std::string>& tokens) {
    tokens.clear();
    while (std::getline(is, line)) {
      ++lineno;
      const auto hash = line.find('#');
      if (hash != std::string::npos) line.resize(hash);
      std::istringstream ls(line);
      std::string tok;
      while (ls >> tok) tokens.push_back(tok);
      if (!tokens.empty()) return true;
    }
    return false;
  };

  std::vector<std::string> tokens;
  if (!next_tokens(tokens) || tokens.size() != 2 ||
      tokens[0] != "sysuq-bayesnet" || tokens[1] != "1")
    fail(lineno, "expected header 'sysuq-bayesnet 1'");

  BayesianNetwork net;
  bool in_cpts = false;
  while (next_tokens(tokens)) {
    if (tokens[0] == "variable") {
      if (in_cpts) fail(lineno, "variable after cpt section");
      if (tokens.size() < 4)
        fail(lineno, "variable needs a name and >= 2 states");
      try {
        net.add_variable(tokens[1],
                         {tokens.begin() + 2, tokens.end()});
      } catch (const std::exception& e) {
        fail(lineno, e.what());
      }
    } else if (tokens[0] == "cpt") {
      in_cpts = true;
      if (tokens.size() < 3 || tokens[2] != "|")
        fail(lineno, "expected 'cpt <child> | <parents...>'");
      VariableId child;
      std::vector<VariableId> parents;
      try {
        child = net.id_of(tokens[1]);
        for (std::size_t i = 3; i < tokens.size(); ++i)
          parents.push_back(net.id_of(tokens[i]));
      } catch (const std::exception& e) {
        fail(lineno, e.what());
      }
      std::size_t rows = 1;
      for (VariableId p : parents) rows *= net.variable(p).cardinality();
      const std::size_t card = net.variable(child).cardinality();
      std::vector<prob::Categorical> cpt;
      for (std::size_t r = 0; r < rows; ++r) {
        if (!next_tokens(tokens)) fail(lineno, "unexpected end of CPT rows");
        if (tokens.size() != card)
          fail(lineno, "expected " + std::to_string(card) + " probabilities");
        std::vector<double> p(card);
        try {
          for (std::size_t s = 0; s < card; ++s) p[s] = std::stod(tokens[s]);
          cpt.emplace_back(std::move(p));
        } catch (const std::exception& e) {
          fail(lineno, e.what());
        }
      }
      try {
        net.set_cpt(child, std::move(parents), std::move(cpt));
      } catch (const std::exception& e) {
        fail(lineno, e.what());
      }
    } else {
      fail(lineno, "unknown directive '" + tokens[0] + "'");
    }
  }
  net.validate();
  return net;
}

}  // namespace sysuq::bayesnet
