#include "bayesnet/loopy_bp.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "bayesnet/inference.hpp"
#include "bayesnet/kernels.hpp"
#include "core/contracts.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace sysuq::bayesnet {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Loopy-BP instruments, registered once on first use. Counters and
// histograms aggregate across every run in the process; the engine's
// kAuto escalation counter lives in engine.cpp next to its guard.
struct BpMetrics {
  obs::Counter& runs;
  obs::Counter& nonconverged;
  obs::Histogram& iterations;
  obs::Histogram& residual;
  obs::Histogram& bound_width;

  static BpMetrics& instance() {
    auto& reg = obs::Registry::global();
    static BpMetrics m{
        reg.counter("bayesnet.bp.runs"),
        reg.counter("bayesnet.bp.nonconverged"),
        reg.histogram("bayesnet.bp.iterations", obs::count_buckets()),
        reg.histogram(
            "bayesnet.bp.residual",
            {1e-12, 1e-10, 1e-8, 1e-6, 1e-4, 1e-2, 1e-1, 1.0}),  // sysuq-lint-allow(magic-epsilon): histogram bucket boundaries, not comparison slack
        reg.histogram(
            "bayesnet.bp.bound_width",
            {1e-12, 1e-9, 1e-6, 1e-3, 1e-2, 0.1, 0.25, 0.5, 1.0}),  // sysuq-lint-allow(magic-epsilon): histogram bucket boundaries, not comparison slack
    };
    return m;
  }
};

// Union-find over the factor-graph nodes, for the acyclicity check.
class DisjointSets {
 public:
  explicit DisjointSets(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  /// Returns false when a and b were already connected (a cycle).
  bool unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    parent_[a] = b;
    return true;
  }

 private:
  std::vector<std::size_t> parent_;
};

/// Log dynamic range between two normalized message vectors:
/// max_i log(a[i]/b[i]) - min_i log(a[i]/b[i]). Entries where both are
/// zero agree exactly and are skipped; a one-sided zero is an infinite
/// ratio. 0 when every entry is skipped or the vectors coincide.
double log_range_between(const std::vector<double>& a,
                         const std::vector<double>& b) {
  double lo = kInf, hi = -kInf;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] == 0.0 && b[i] == 0.0) continue;  // sysuq-lint-allow(float-eq): exactly-zero mass agrees exactly
    if (a[i] == 0.0 || b[i] == 0.0) return kInf;  // sysuq-lint-allow(float-eq): one-sided exact zero is an infinite ratio
    // sysuq-lint-allow(log-domain): ratio of two linear probabilities, logged once
    const double r = std::log(a[i] / b[i]);
    lo = std::min(lo, r);
    hi = std::max(hi, r);
  }
  if (!(hi >= lo)) return 0.0;  // all entries skipped
  return hi - lo;
}

}  // namespace

double BoundedPosterior::width() const {
  double w = 0.0;
  for (std::size_t i = 0; i < lo.size(); ++i) w = std::max(w, hi[i] - lo[i]);
  return w;
}

bool BoundedPosterior::contains(const std::vector<double>& probs,
                                double slack) const {
  if (probs.size() != lo.size()) return false;
  for (std::size_t i = 0; i < probs.size(); ++i) {
    if (probs[i] < lo[i] - slack || probs[i] > hi[i] + slack) return false;
  }
  return true;
}

LoopyBP::LoopyBP(const BayesianNetwork& net, const Evidence& evidence)
    : LoopyBP(net, evidence, Options{}) {}

LoopyBP::LoopyBP(const BayesianNetwork& net, const Evidence& evidence,
                 Options options)
    : net_(net), evidence_(evidence), options_(options) {
  SYSUQ_EXPECT(options_.max_iterations >= 1,
               "LoopyBP: max_iterations must be >= 1");
  SYSUQ_EXPECT(options_.damping >= 0.0 && options_.damping < 1.0,
               "LoopyBP: damping must be in [0, 1)");
  SYSUQ_EXPECT(options_.tolerance > 0.0, "LoopyBP: tolerance must be > 0");
  SYSUQ_EXPECT(options_.max_blanket_configs >= 1,
               "LoopyBP: max_blanket_configs must be >= 1");
  net_.validate();
  for (const auto& [v, state] : evidence_) {
    if (v >= net_.size())
      throw std::out_of_range("LoopyBP: evidence variable id");
    if (state >= net_.variable(v).cardinality())
      throw std::out_of_range("LoopyBP: evidence state index");
  }

  const obs::Span span("bayesnet.bp.run");
  const auto t0 = std::chrono::steady_clock::now();
  build_factor_graph();
  if (!impossible_) run_message_passing();
  if (!impossible_) extract_marginals();
  if (!impossible_) certify_bounds();
  build_seconds_ = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();

  auto& metrics = BpMetrics::instance();
  metrics.runs.inc();
  if (!impossible_ && !converged_) metrics.nonconverged.inc();
  metrics.iterations.observe(static_cast<double>(iterations_));
  if (std::isfinite(final_residual_)) metrics.residual.observe(final_residual_);
  metrics.bound_width.observe(max_bound_width_);
}

void LoopyBP::build_factor_graph() {
  edges_of_var_.assign(net_.size(), {});
  factors_.reserve(net_.size());
  for (VariableId child = 0; child < net_.size(); ++child) {
    Factor f = net_.cpt_factor(child);
    for (const auto& [ev, state] : evidence_) {
      if (f.contains(ev)) f = f.reduce(ev, state);
    }
    if (f.scope().empty()) {
      // Fully observed family: a constant multiplying P(e). Zero means
      // the evidence directly contradicts this CPT.
      if (f.values().empty() || f.values().front() <= 0.0) impossible_ = true;
      continue;
    }
    factors_.push_back(std::move(f));
  }

  // Edges in factor-index then scope-position order — this IS the
  // deterministic flooding schedule.
  DisjointSets components(net_.size() + factors_.size());
  acyclic_ = true;
  for (std::size_t fi = 0; fi < factors_.size(); ++fi) {
    const auto& scope = factors_[fi].scope();
    for (std::size_t pos = 0; pos < scope.size(); ++pos) {
      const VariableId v = scope[pos];
      Edge e;
      e.factor = fi;
      e.var = v;
      e.pos = pos;
      const double card = static_cast<double>(net_.variable(v).cardinality());
      e.to_var.assign(net_.variable(v).cardinality(), 1.0 / card);
      e.to_factor = e.to_var;
      edges_of_var_[v].push_back(edges_.size());
      edges_.push_back(std::move(e));
      if (!components.unite(v, net_.size() + fi)) acyclic_ = false;
    }
  }
}

void LoopyBP::run_message_passing() {
  auto& arena = kernels::thread_scratch();
  arena.reset();

  // Edge ids are contiguous per factor; first_edge[fi] + pos addresses
  // the (factor fi, scope position pos) pair in O(1).
  std::vector<std::size_t> first_edge(factors_.size(), 0);
  for (std::size_t e = 0; e < edges_.size(); ++e) {
    if (edges_[e].pos == 0) first_edge[edges_[e].factor] = e;
  }

  // One undamped factor->var update for edge e, computed from the
  // previous iteration's var->factor messages. Returns the linear total
  // before normalization (zero total = impossible evidence).
  std::vector<double> staged_msg;
  const auto update_to_var = [&](std::size_t eid, std::vector<double>& out) {
    const Edge& e = edges_[eid];
    const Factor& fac = factors_[e.factor];
    kernels::View cur = kernels::view_of(fac);
    const auto& scope = fac.scope();
    for (std::size_t pos = 0; pos < scope.size(); ++pos) {
      if (pos == e.pos) continue;
      const Edge& in = edges_[first_edge[e.factor] + pos];
      const std::size_t card = in.to_factor.size();
      kernels::View msg{&scope[pos], &card, in.to_factor.data(), 1, card};
      cur = kernels::product(cur, msg, arena).view();
    }
    const kernels::Table marg =
        kernels::marginalize_keep(cur, &e.var, 1, arena);
    out.assign(marg.values, marg.values + marg.size);
    arena_high_water_ = std::max(arena_high_water_, arena.bytes_used());
    arena.reset();
    const double total = kernels::total(out.data(), out.size());
    if (total > 0.0) kernels::scale(out.data(), out.size(), 1.0 / total);
    return total;
  };

  std::vector<std::vector<double>> staged(edges_.size());
  for (std::size_t iter = 1; iter <= options_.max_iterations; ++iter) {
    iterations_ = iter;
    double residual = 0.0;

    // Phase 1: every factor->var message from the old var->factor set.
    for (std::size_t eid = 0; eid < edges_.size(); ++eid) {
      if (update_to_var(eid, staged[eid]) <= 0.0) {
        impossible_ = true;
        return;
      }
      const Edge& e = edges_[eid];
      for (std::size_t i = 0; i < staged[eid].size(); ++i) {
        residual = std::max(residual, std::abs(staged[eid][i] - e.to_var[i]));
      }
    }
    for (std::size_t eid = 0; eid < edges_.size(); ++eid) {
      Edge& e = edges_[eid];
      if (options_.damping > 0.0) {
        for (std::size_t i = 0; i < e.to_var.size(); ++i) {
          e.to_var[i] = (1.0 - options_.damping) * staged[eid][i] +
                        options_.damping * e.to_var[i];
        }
        const double total = kernels::total(e.to_var.data(), e.to_var.size());
        kernels::scale(e.to_var.data(), e.to_var.size(), 1.0 / total);
      } else {
        e.to_var = staged[eid];
      }
    }

    // Phase 2: every var->factor message from the fresh factor->var set.
    for (std::size_t eid = 0; eid < edges_.size(); ++eid) {
      Edge& e = edges_[eid];
      std::fill(e.to_factor.begin(), e.to_factor.end(), 1.0);
      for (const std::size_t other : edges_of_var_[e.var]) {
        if (other == eid) continue;
        const auto& m = edges_[other].to_var;
        for (std::size_t i = 0; i < m.size(); ++i) e.to_factor[i] *= m[i];
      }
      const double total =
          kernels::total(e.to_factor.data(), e.to_factor.size());
      if (total <= 0.0) {
        impossible_ = true;
        return;
      }
      kernels::scale(e.to_factor.data(), e.to_factor.size(), 1.0 / total);
    }

    final_residual_ = residual;
    if (residual < options_.tolerance) {
      converged_ = true;
      break;
    }
  }

  // One extra undamped sweep measures how far the resting messages are
  // from a single application of the update operator — the residual
  // input b_e of the contraction system.
  for (std::size_t eid = 0; eid < edges_.size(); ++eid) {
    if (update_to_var(eid, staged_msg) <= 0.0) {
      impossible_ = true;
      return;
    }
    edges_[eid].residual_log_range =
        log_range_between(staged_msg, edges_[eid].to_var);
  }
}

void LoopyBP::extract_marginals() {
  marginals_.resize(net_.size());
  std::vector<double> belief;
  for (VariableId v = 0; v < net_.size(); ++v) {
    BoundedPosterior& out = marginals_[v];
    out.converged = converged_;
    if (const auto it = evidence_.find(v); it != evidence_.end()) {
      out.point = prob::Categorical::delta(it->second,
                                           net_.variable(v).cardinality());
      out.lo = out.point.probs();
      out.hi = out.point.probs();
      continue;
    }
    belief.assign(net_.variable(v).cardinality(), 1.0);
    for (const std::size_t eid : edges_of_var_[v]) {
      const auto& m = edges_[eid].to_var;
      for (std::size_t i = 0; i < m.size(); ++i) belief[i] *= m[i];
    }
    const double total = kernels::total(belief.data(), belief.size());
    if (total <= 0.0) {
      impossible_ = true;
      return;
    }
    kernels::scale(belief.data(), belief.size(), 1.0 / total);
    // Guard fp drift so Categorical's normalization contract holds.
    out.point = prob::Categorical::normalized(belief);
    out.lo.assign(belief.size(), 0.0);
    out.hi.assign(belief.size(), 1.0);
  }
}

void LoopyBP::certify_bounds() {
  // --- Contraction system over the factor-graph edges -----------------
  // Per factor: dynamic range D = max psi / min psi, Dobrushin-style
  // contraction rate (D-1)/(D+1), and an absolute log-range cap log D
  // (a single factor cannot skew any message by more than its own
  // dynamic range). A factor with zero entries has D = inf: rate 1,
  // no cap.
  std::vector<double> rate(factors_.size()), cap(factors_.size());
  for (std::size_t fi = 0; fi < factors_.size(); ++fi) {
    const auto& vals = factors_[fi].values();
    double vmin = kInf, vmax = 0.0;
    for (const double x : vals) {
      vmin = std::min(vmin, x);
      vmax = std::max(vmax, x);
    }
    if (vmin <= 0.0) {
      rate[fi] = 1.0;
      cap[fi] = kInf;
    } else {
      const double d = vmax / vmin;
      rate[fi] = (d - 1.0) / (d + 1.0);
      cap[fi] = std::log(d);
    }
  }

  // Fixpoint-distance system: eps_e bounds the log-range distance from
  // the resting message on edge e = (f -> v) to the BP fixpoint,
  //   eps_e = b_e + min(cap_f, rate_f * sum of upstream eps),
  // seeded from the sound overestimate b_e + cap_f and iterated
  // monotonically downward (every iterate stays a valid bound).
  for (Edge& e : edges_) {
    e.fixpoint_eps = e.residual_log_range + cap[e.factor];
  }
  std::vector<double> next_eps(edges_.size());
  for (std::size_t sweep = 0; sweep < 100; ++sweep) {
    double change = 0.0;
    for (std::size_t eid = 0; eid < edges_.size(); ++eid) {
      const Edge& e = edges_[eid];
      double upstream = 0.0;
      const auto& scope = factors_[e.factor].scope();
      for (std::size_t pos = 0; pos < scope.size(); ++pos) {
        if (pos == e.pos) continue;
        for (const std::size_t in : edges_of_var_[scope[pos]]) {
          if (edges_[in].factor == e.factor) continue;
          upstream += edges_[in].fixpoint_eps;
        }
      }
      // sysuq-lint-allow(log-domain): contraction rate scaling a log-range magnitude — the Ihler bound, not a domain mixup
      const double contracted = rate[e.factor] == 0.0  // sysuq-lint-allow(float-eq): guard 0 * inf when a uniform factor meets an unbounded upstream
                                    ? 0.0
                                    : rate[e.factor] * upstream;
      next_eps[eid] =
          e.residual_log_range + std::min(cap[e.factor], contracted);
      if (std::isfinite(next_eps[eid]) || std::isfinite(e.fixpoint_eps)) {
        change = std::max(change, std::abs(e.fixpoint_eps - next_eps[eid]));
      }
    }
    for (std::size_t eid = 0; eid < edges_.size(); ++eid) {
      edges_[eid].fixpoint_eps = next_eps[eid];
    }
    if (change < tolerance::kFixpoint) break;
  }

  // --- Per-variable certified intervals -------------------------------
  max_bound_width_ = 0.0;
  std::vector<double> w_lo, w_hi;
  for (VariableId v = 0; v < net_.size(); ++v) {
    if (evidence_.contains(v)) continue;
    BoundedPosterior& out = marginals_[v];
    const std::size_t card = net_.variable(v).cardinality();

    // Markov-blanket convexity box, sound on every graph: P(v | e) is a
    // convex combination over blanket configurations b of
    // P(v | B = b, e), and given the full blanket only the factors
    // touching v matter. Enumerate b exactly while feasible; otherwise
    // relax each factor to its per-state min/max envelope.
    std::vector<std::size_t> touching;
    for (const std::size_t eid : edges_of_var_[v]) {
      touching.push_back(edges_[eid].factor);
    }
    std::vector<VariableId> blanket;
    for (const std::size_t fi : touching) {
      for (const VariableId u : factors_[fi].scope()) {
        if (u != v) blanket.push_back(u);
      }
    }
    std::sort(blanket.begin(), blanket.end());
    blanket.erase(std::unique(blanket.begin(), blanket.end()), blanket.end());

    std::size_t configs = 1;
    for (const VariableId u : blanket) {
      const std::size_t c = net_.variable(u).cardinality();
      if (kernels::mul_overflows(configs, c)) {
        configs = options_.max_blanket_configs + 1;
        break;
      }
      configs *= c;
      if (configs > options_.max_blanket_configs) break;
    }

    bool any_feasible = false;
    if (configs <= options_.max_blanket_configs) {
      // Exact enumeration: walk every blanket assignment in mixed-radix
      // order and envelope the conditional P(v | B = b, e).
      out.lo.assign(card, 1.0);
      out.hi.assign(card, 0.0);
      std::vector<std::size_t> states(blanket.size(), 0);
      std::vector<std::vector<std::size_t>> slot(touching.size());
      std::vector<std::vector<std::size_t>> fstates(touching.size());
      for (std::size_t t = 0; t < touching.size(); ++t) {
        const auto& scope = factors_[touching[t]].scope();
        fstates[t].assign(scope.size(), 0);
        slot[t].assign(scope.size(), blanket.size());  // sentinel = v itself
        for (std::size_t pos = 0; pos < scope.size(); ++pos) {
          if (scope[pos] == v) continue;
          slot[t][pos] = static_cast<std::size_t>(
              std::lower_bound(blanket.begin(), blanket.end(), scope[pos]) -
              blanket.begin());
        }
      }
      std::vector<double> w(card);
      for (std::size_t c = 0; c < configs; ++c) {
        double wsum = 0.0;
        for (std::size_t i = 0; i < card; ++i) {
          double prod = 1.0;
          for (std::size_t t = 0; t < touching.size(); ++t) {
            const auto& scope = factors_[touching[t]].scope();
            for (std::size_t pos = 0; pos < scope.size(); ++pos) {
              fstates[t][pos] =
                  slot[t][pos] == blanket.size() ? i : states[slot[t][pos]];
            }
            prod *= factors_[touching[t]].at(fstates[t]);
          }
          w[i] = prod;
          wsum += prod;
        }
        if (wsum > 0.0) {
          any_feasible = true;
          for (std::size_t i = 0; i < card; ++i) {
            out.lo[i] = std::min(out.lo[i], w[i] / wsum);
            out.hi[i] = std::max(out.hi[i], w[i] / wsum);
          }
        }
        // Next mixed-radix blanket assignment (last variable fastest).
        for (std::size_t k = blanket.size(); k-- > 0;) {
          if (++states[k] < net_.variable(blanket[k]).cardinality()) break;
          states[k] = 0;
        }
      }
    } else {
      // Relaxation: per state i, bound the weight each factor can
      // contribute by its min/max over all blanket completions; the
      // worst-case mixture of those envelopes bounds the conditional.
      w_lo.assign(card, 1.0);
      w_hi.assign(card, 1.0);
      for (const std::size_t fi : touching) {
        const Factor& fac = factors_[fi];
        const auto& scope = fac.scope();
        const std::size_t pos = static_cast<std::size_t>(
            std::lower_bound(scope.begin(), scope.end(), v) - scope.begin());
        std::size_t stride = 1;
        for (std::size_t k = scope.size(); k-- > pos + 1;) {
          stride *= fac.cardinalities()[k];
        }
        std::vector<double> fmin(card, kInf), fmax(card, 0.0);
        const auto& vals = fac.values();
        for (std::size_t idx = 0; idx < vals.size(); ++idx) {
          const std::size_t i = (idx / stride) % card;
          fmin[i] = std::min(fmin[i], vals[idx]);
          fmax[i] = std::max(fmax[i], vals[idx]);
        }
        for (std::size_t i = 0; i < card; ++i) {
          w_lo[i] *= fmin[i];
          w_hi[i] *= fmax[i];
        }
      }
      out.lo.assign(card, 0.0);
      out.hi.assign(card, 1.0);
      double hi_total = 0.0;
      for (const double x : w_hi) hi_total += x;
      if (hi_total > 0.0) any_feasible = true;
      for (std::size_t i = 0; i < card; ++i) {
        if (w_hi[i] <= 0.0) {
          out.lo[i] = 0.0;
          out.hi[i] = 0.0;
          continue;
        }
        double other_hi = 0.0, other_lo = 0.0;
        for (std::size_t j = 0; j < card; ++j) {
          if (j == i) continue;
          other_hi += w_hi[j];
          other_lo += w_lo[j];
        }
        const double lo_den = w_lo[i] + other_hi;
        out.lo[i] = lo_den > 0.0 ? w_lo[i] / lo_den : 1.0;
        out.hi[i] = w_hi[i] / (w_hi[i] + other_lo);
      }
    }
    if (!any_feasible) {
      // Every blanket completion carries zero mass: the evidence itself
      // is impossible. Message passing normally catches this first; the
      // envelope is the backstop.
      impossible_ = true;
      return;
    }

    // Contraction box: on an acyclic factor graph the BP fixpoint is
    // the true posterior, so the certified fixpoint distance becomes a
    // certified truth interval — intersect it with the blanket box.
    // On loopy graphs it only measures distance-to-fixpoint and is not
    // applied.
    if (acyclic_) {
      double belief_log_range = 0.0;
      for (const std::size_t eid : edges_of_var_[v]) {
        belief_log_range += edges_[eid].fixpoint_eps;
      }
      for (std::size_t i = 0; i < card; ++i) {
        const double p = out.point.p(i);
        double clo, chi;
        if (p <= 0.0) {
          // Message zeros only ever arise from factor zeros (supports
          // shrink monotonically from full), so a zero belief entry is
          // exact on any graph.
          clo = 0.0;
          chi = 0.0;
        } else if (p >= 1.0) {
          clo = 1.0;
          chi = 1.0;
        } else if (!std::isfinite(belief_log_range)) {
          clo = 0.0;
          chi = 1.0;
        } else {
          // A log-range shift of at most L around the belief moves the
          // normalized mass to p / (p + (1-p) e^{+/-L}).
          clo = p / (p + (1.0 - p) * std::exp(belief_log_range));
          chi = p / (p + (1.0 - p) * std::exp(-belief_log_range));
        }
        const double lo2 = std::max(out.lo[i], clo);
        const double hi2 = std::min(out.hi[i], chi);
        if (lo2 <= hi2) {
          out.lo[i] = lo2;
          out.hi[i] = hi2;
        }
      }
    }

    // Hull with the point estimate and clamp: the reported point always
    // sits inside its own certificate.
    for (std::size_t i = 0; i < card; ++i) {
      out.lo[i] = std::clamp(std::min(out.lo[i], out.point.p(i)), 0.0, 1.0);
      out.hi[i] = std::clamp(std::max(out.hi[i], out.point.p(i)), 0.0, 1.0);
    }
    max_bound_width_ = std::max(max_bound_width_, out.width());
  }
}

const BoundedPosterior& LoopyBP::query(VariableId v) const {
  if (v >= net_.size()) throw std::out_of_range("LoopyBP: variable id");
  if (impossible_) throw_impossible();
  return marginals_[v];
}

const std::vector<BoundedPosterior>& LoopyBP::all_marginals() const {
  if (impossible_) throw_impossible();
  return marginals_;
}

void LoopyBP::throw_impossible() const {
  throw std::domain_error(impossible_evidence_message(net_, evidence_));
}

}  // namespace sysuq::bayesnet
