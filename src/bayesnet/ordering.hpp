// Elimination orderings for variable elimination.
//
// The quality of an elimination ordering determines the induced width of
// the run — the size of the largest intermediate factor — which dominates
// both time and memory of exact inference. This module computes orderings
// over an *interaction graph* (the moral graph of the network, restricted
// by evidence) that is maintained incrementally while the ordering is
// built, instead of rescanning every factor's scope per elimination round.
#pragma once

#include <cstddef>
#include <vector>

#include "bayesnet/factor.hpp"
#include "bayesnet/network.hpp"

namespace sysuq::bayesnet {

/// Greedy ordering heuristic.
enum class OrderingHeuristic {
  kMinDegree,  ///< eliminate the vertex with fewest live neighbours
  kMinFill,    ///< eliminate the vertex introducing fewest fill edges
};

/// An elimination ordering plus the quality statistics the planner and
/// the benches report.
struct EliminationOrdering {
  /// Variables to eliminate, in elimination order. Kept and evidence
  /// variables never appear.
  std::vector<VariableId> order;
  /// Largest neighbourhood (clique minus the eliminated vertex) seen when
  /// executing the ordering — the induced-width proxy.
  std::size_t induced_width = 0;
  /// Total fill edges introduced by the ordering.
  std::size_t fill_edges = 0;
};

/// Computes an elimination ordering for `net` with `keep` retained in the
/// result factor and `evidence_keys` observed (their factors are reduced
/// before elimination, so they are deleted from the interaction graph).
/// Deterministic: ties break toward the smallest VariableId.
[[nodiscard]] EliminationOrdering compute_elimination_order(
    const BayesianNetwork& net, const std::vector<VariableId>& keep,
    const std::vector<VariableId>& evidence_keys,
    OrderingHeuristic heuristic = OrderingHeuristic::kMinFill);

/// Runs variable elimination over `factors` following `order`: for each
/// variable, multiplies every live factor containing it and sums it out.
/// Returns the product of all remaining factors (over the kept scope).
[[nodiscard]] Factor eliminate_with_order(std::vector<Factor> factors,
                                          const std::vector<VariableId>& order);

/// Replays `order` over the moral graph of `net` (with `evidence_keys`
/// deleted, exactly as `compute_elimination_order` builds it) and returns
/// one elimination clique per step: the eliminated vertex plus its live
/// neighbours at elimination time, sorted by VariableId. These are the
/// cliques of the triangulation induced by the ordering — the raw
/// material of the junction tree. `order` must cover every non-evidence
/// variable exactly once (the `keep = {}` form of the ordering).
[[nodiscard]] std::vector<std::vector<VariableId>> elimination_cliques(
    const BayesianNetwork& net, const std::vector<VariableId>& evidence_keys,
    const std::vector<VariableId>& order);

}  // namespace sysuq::bayesnet
