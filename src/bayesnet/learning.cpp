#include "bayesnet/learning.hpp"

#include <stdexcept>

#include "core/contracts.hpp"

namespace sysuq::bayesnet {

CptLearner::CptLearner(const BayesianNetwork& net, VariableId child,
                       double prior_alpha)
    : child_(child),
      parents_(net.parents(child)),
      child_card_(net.variable(child).cardinality()) {
  SYSUQ_EXPECT(prior_alpha > 0.0, "CptLearner: prior_alpha <= 0");
  parent_cards_.reserve(parents_.size());
  std::size_t rows = 1;
  for (VariableId p : parents_) {
    parent_cards_.push_back(net.variable(p).cardinality());
    rows *= parent_cards_.back();
  }
  posteriors_.reserve(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    posteriors_.emplace_back(std::vector<double>(child_card_, prior_alpha));
  }
}

std::size_t CptLearner::row_of(const std::vector<std::size_t>& full_state) const {
  std::size_t idx = 0;
  for (std::size_t i = 0; i < parents_.size(); ++i) {
    const std::size_t s = full_state.at(parents_[i]);
    if (s >= parent_cards_[i])
      throw std::out_of_range("CptLearner: parent state out of range");
    idx = idx * parent_cards_[i] + s;
  }
  return idx;
}

void CptLearner::observe(const std::vector<std::size_t>& full_state) {
  const std::size_t child_state = full_state.at(child_);
  if (child_state >= child_card_)
    throw std::out_of_range("CptLearner: child state out of range");
  std::vector<std::size_t> counts(child_card_, 0);
  counts[child_state] = 1;
  const std::size_t row = row_of(full_state);
  posteriors_[row] = posteriors_[row].updated(counts);
  ++observations_;
}

const prob::Dirichlet& CptLearner::row_posterior(std::size_t row) const {
  if (row >= posteriors_.size()) throw std::out_of_range("CptLearner: row");
  return posteriors_[row];
}

std::vector<prob::Categorical> CptLearner::posterior_mean_rows() const {
  std::vector<prob::Categorical> rows;
  rows.reserve(posteriors_.size());
  for (const auto& d : posteriors_) rows.emplace_back(d.mean());
  return rows;
}

double CptLearner::epistemic_width() const {
  double total = 0.0;
  for (const auto& d : posteriors_) total += d.mean_credible_width();
  return total / static_cast<double>(posteriors_.size());
}

void CptLearner::commit(BayesianNetwork& net) const {
  net.update_cpt_rows(child_, posterior_mean_rows());
}

}  // namespace sysuq::bayesnet
