#include "bayesnet/kernels.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "core/contracts.hpp"
#include "core/tolerance.hpp"

namespace sysuq::bayesnet::kernels {

namespace {

constexpr double kUnitValue[1] = {1.0};

// Row-major strides of a table (last dimension fastest → stride 1).
void own_strides(const std::size_t* cards, std::size_t rank,
                 std::size_t* strides) noexcept {
  std::size_t acc = 1;
  for (std::size_t i = rank; i-- > 0;) {
    strides[i] = acc;
    acc *= cards[i];
  }
}

// Maps each merged dimension onto the operand's stride (0 when the
// operand does not contain the variable). Returns the number of operand
// dimensions matched, which must equal the operand's rank.
std::size_t map_strides(const View& op, const VariableId* scope,
                        std::size_t rank, const std::size_t* op_strides,
                        std::size_t* out) noexcept {
  std::size_t pos = 0;
  for (std::size_t k = 0; k < rank; ++k) {
    if (pos < op.rank && op.scope[pos] == scope[k]) {
      out[k] = op_strides[pos];
      ++pos;
    } else {
      out[k] = 0;
    }
  }
  return pos;
}

// Shared skeleton of the linear and log-space products. Because scopes
// are sorted, the merged inner (fastest) dimension has stride 1 in each
// operand that contains it and 0 otherwise, so every inner loop is a
// contiguous combine or a broadcast.
template <typename Op>
void combine_into(const View& a, const View& b, const VariableId* scope,
                  const std::size_t* cards, std::size_t rank, double* out,
                  Op op, const char* what) {
  SYSUQ_EXPECT(rank <= kMaxRank, "factor kernels: rank exceeds kMaxRank");
  if (rank == 0) {
    out[0] = op(a.values[0], b.values[0]);
    return;
  }
  std::size_t oa[kMaxRank], ob[kMaxRank];
  own_strides(a.cards, a.rank, oa);
  own_strides(b.cards, b.rank, ob);
  std::size_t sa[kMaxRank], sb[kMaxRank];
  SYSUQ_EXPECT(map_strides(a, scope, rank, oa, sa) == a.rank, what);
  SYSUQ_EXPECT(map_strides(b, scope, rank, ob, sb) == b.rank, what);

  const std::size_t total_cells = checked_table_size(cards, rank, what);
  const std::size_t inner = rank - 1;
  const std::size_t cin = cards[inner];
  const bool a_in = sa[inner] != 0;  // stride is 1 when present (sorted)
  const bool b_in = sb[inner] != 0;
  SYSUQ_EXPECT(a_in || b_in, what);

  std::size_t idx[kMaxRank];
  std::fill(idx, idx + rank, std::size_t{0});
  const double* av = a.values;
  const double* bv = b.values;
  std::size_t ia = 0, ib = 0;
  const std::size_t blocks = total_cells / cin;
  for (std::size_t blk = 0;;) {
    const double* pa = av + ia;
    const double* pb = bv + ib;
    if (a_in && b_in) {
      for (std::size_t j = 0; j < cin; ++j) out[j] = op(pa[j], pb[j]);
    } else if (a_in) {
      const double vb = *pb;
      for (std::size_t j = 0; j < cin; ++j) out[j] = op(pa[j], vb);
    } else {
      const double va = *pa;
      for (std::size_t j = 0; j < cin; ++j) out[j] = op(va, pb[j]);
    }
    out += cin;
    if (++blk == blocks) break;
    for (std::size_t k = inner; k-- > 0;) {
      ia += sa[k];
      ib += sb[k];
      if (++idx[k] < cards[k]) break;
      ia -= sa[k] * cards[k];
      ib -= sb[k] * cards[k];
      idx[k] = 0;
    }
  }
}

Factor materialize(const View& v) {
  return Factor(std::vector<VariableId>(v.scope, v.scope + v.rank),
                std::vector<std::size_t>(v.cards, v.cards + v.rank),
                std::vector<double>(v.values, v.values + v.size));
}

// Sums `v` out of `acc` (which must contain it) into a fresh arena
// table over the remaining scope.
Table marginalize_out_one(const View& acc, VariableId v, Arena& arena) {
  VariableId keep[kMaxRank];
  std::size_t nkeep = 0;
  for (std::size_t i = 0; i < acc.rank; ++i) {
    if (acc.scope[i] != v) keep[nkeep++] = acc.scope[i];
  }
  SYSUQ_EXPECT(nkeep + 1 == acc.rank,
               "factor kernels: eliminated variable not in scope");
  return marginalize_keep(acc, keep, nkeep, arena);
}

struct ElimOutcome {
  View result;
  double log_scale = 0.0;
  bool impossible = false;
};

// Core elimination loop shared by the scaled and legacy paths. With
// `rescale`, every fresh intermediate whose total leaves
// [kRescaleFloor, 1/kRescaleFloor] is renormalized and the log of the
// factored-out total accumulated; an exactly-zero intermediate short-
// circuits as impossible (zeros only propagate outward in a product of
// non-negative factors).
ElimOutcome eliminate_core(std::vector<View>& live,
                           const std::vector<VariableId>& order, Arena& arena,
                           bool rescale) {
  ElimOutcome out;
  const auto rescale_table = [&](Table& t) -> bool {
    const double mass = total(t.values, t.size);
    if (!(mass > 0.0)) return false;
    if (mass < tolerance::kRescaleFloor || mass > 1.0 / tolerance::kRescaleFloor) {
      scale(t.values, t.size, 1.0 / mass);
      out.log_scale += std::log(mass);
    }
    return true;
  };

  for (const VariableId v : order) {
    View acc;
    bool have = false;
    std::size_t w = 0;
    for (std::size_t i = 0; i < live.size(); ++i) {
      if (live[i].contains(v)) {
        if (!have) {
          acc = live[i];
          have = true;
        } else {
          acc = product(acc, live[i], arena).view();
        }
      } else {
        live[w++] = live[i];
      }
    }
    if (!have) continue;  // variable absent from every live factor
    live.resize(w);
    Table m = marginalize_out_one(acc, v, arena);
    if (rescale && !rescale_table(m)) {
      out.impossible = true;
      return out;
    }
    live.push_back(m.view());
  }

  if (live.empty()) {
    out.result = unit_view();
    return out;
  }
  View acc = live.front();
  for (std::size_t i = 1; i < live.size(); ++i) {
    Table t = product(acc, live[i], arena);
    if (rescale && !rescale_table(t)) {
      out.impossible = true;
      return out;
    }
    acc = t.view();
  }
  out.result = acc;
  return out;
}

}  // namespace

bool mul_overflows(std::size_t a, std::size_t b) noexcept {
  return b != 0 && a > SIZE_MAX / b;
}

std::size_t checked_table_size(const std::size_t* cards, std::size_t rank,
                               const char* what) {
  std::size_t size = 1;
  for (std::size_t i = 0; i < rank; ++i) {
    SYSUQ_EXPECT(cards[i] != 0, what);
    SYSUQ_EXPECT(!mul_overflows(size, cards[i]), what);
    size *= cards[i];
  }
  return size;
}

bool View::contains(VariableId v) const noexcept {
  return std::binary_search(scope, scope + rank, v);
}

View view_of(const Factor& f) {
  return View{f.scope().data(), f.cardinalities().data(), f.values().data(),
              f.scope().size(), f.values().size()};
}

View unit_view() noexcept { return View{nullptr, nullptr, kUnitValue, 0, 1}; }

Table make_table(const VariableId* scope, const std::size_t* cards,
                 std::size_t rank, Arena& arena) {
  SYSUQ_EXPECT(rank <= kMaxRank, "kernels::make_table: rank exceeds kMaxRank");
  Table t;
  t.rank = rank;
  t.size = checked_table_size(cards, rank, "kernels::make_table: table size");
  t.scope = arena.alloc<VariableId>(rank);
  t.cards = arena.alloc<std::size_t>(rank);
  t.values = arena.alloc<double>(t.size);
  std::copy(scope, scope + rank, t.scope);
  std::copy(cards, cards + rank, t.cards);
  return t;
}

std::size_t merge_scopes(const View& a, const View& b, VariableId* scope,
                         std::size_t* cards) {
  std::size_t i = 0, j = 0, k = 0;
  while (i < a.rank || j < b.rank) {
    if (j == b.rank || (i < a.rank && a.scope[i] < b.scope[j])) {
      scope[k] = a.scope[i];
      cards[k] = a.cards[i];
      ++i;
    } else if (i == a.rank || b.scope[j] < a.scope[i]) {
      scope[k] = b.scope[j];
      cards[k] = b.cards[j];
      ++j;
    } else {
      SYSUQ_EXPECT(a.cards[i] == b.cards[j],
                   "kernels::merge_scopes: cardinality mismatch on shared "
                   "variable");
      scope[k] = a.scope[i];
      cards[k] = a.cards[i];
      ++i;
      ++j;
    }
    ++k;
  }
  return k;
}

void product_into(const View& a, const View& b, const VariableId* scope,
                  const std::size_t* cards, std::size_t rank, double* out) {
  SYSUQ_EXPECT(a.rank <= rank && b.rank <= rank,
               "kernels::product_into: operand rank exceeds merged rank");
  combine_into(
      a, b, scope, cards, rank, out,
      [](double x, double y) { return x * y; },
      "kernels::product_into: operand scopes must be subsets of the merged "
      "scope");
}

Table product(const View& a, const View& b, Arena& arena) {
  SYSUQ_EXPECT(a.rank + b.rank <= 2 * kMaxRank,
               "kernels::product: combined rank exceeds kMaxRank");
  VariableId scope[2 * kMaxRank];
  std::size_t cards[2 * kMaxRank];
  const std::size_t rank = merge_scopes(a, b, scope, cards);
  SYSUQ_EXPECT(rank <= kMaxRank, "kernels::product: merged rank exceeds kMaxRank");
  Table t = make_table(scope, cards, rank, arena);
  product_into(a, b, t.scope, t.cards, rank, t.values);
  return t;
}

void marginalize_into(const View& f, std::size_t drop_pos, double* out) {
  SYSUQ_EXPECT(drop_pos < f.rank, "kernels::marginalize_into: position");
  VariableId keep[kMaxRank];
  std::size_t nkeep = 0;
  for (std::size_t i = 0; i < f.rank; ++i) {
    if (i != drop_pos) keep[nkeep++] = f.scope[i];
  }
  marginalize_keep_into(f, keep, nkeep, out);
}

void marginalize_keep_into(const View& f, const VariableId* keep,
                           std::size_t nkeep, double* out) {
  SYSUQ_EXPECT(f.rank <= kMaxRank,
               "kernels::marginalize_keep_into: rank exceeds kMaxRank");
  // Kept flags + per-input-dimension output strides (0 for summed-out
  // dimensions), validated once: `keep` must be a sorted subset of the
  // scope.
  bool kept[kMaxRank];
  std::size_t pos = 0;
  for (std::size_t i = 0; i < f.rank; ++i) {
    if (pos < nkeep && f.scope[i] == keep[pos]) {
      kept[i] = true;
      ++pos;
    } else {
      kept[i] = false;
    }
  }
  SYSUQ_EXPECT(pos == nkeep,
               "kernels::marginalize_keep_into: keep must be a sorted subset "
               "of the scope");
  std::size_t out_stride[kMaxRank];
  std::size_t out_size = 1;
  for (std::size_t i = f.rank; i-- > 0;) {
    if (kept[i]) {
      out_stride[i] = out_size;
      out_size *= f.cards[i];
    } else {
      out_stride[i] = 0;
    }
  }
  std::fill(out, out + out_size, 0.0);
  if (f.rank == 0) {
    out[0] = f.values[0];
    return;
  }

  const std::size_t inner = f.rank - 1;
  const std::size_t cin = f.cards[inner];
  const bool inner_kept = kept[inner];
  std::size_t idx[kMaxRank];
  std::fill(idx, idx + f.rank, std::size_t{0});
  const double* v = f.values;
  std::size_t o = 0;
  const std::size_t blocks = f.size / cin;
  for (std::size_t blk = 0;;) {
    if (inner_kept) {
      double* po = out + o;
      for (std::size_t j = 0; j < cin; ++j) po[j] += v[j];
    } else {
      double s = 0.0;
      for (std::size_t j = 0; j < cin; ++j) s += v[j];
      out[o] += s;
    }
    v += cin;
    if (++blk == blocks) break;
    for (std::size_t k = inner; k-- > 0;) {
      o += out_stride[k];
      if (++idx[k] < f.cards[k]) break;
      o -= out_stride[k] * f.cards[k];
      idx[k] = 0;
    }
  }
}

Table marginalize_keep(const View& f, const VariableId* keep,
                       std::size_t nkeep, Arena& arena) {
  std::size_t kcards[kMaxRank];
  std::size_t pos = 0;
  for (std::size_t i = 0; i < f.rank && pos < nkeep; ++i) {
    if (f.scope[i] == keep[pos]) kcards[pos++] = f.cards[i];
  }
  SYSUQ_EXPECT(pos == nkeep,
               "kernels::marginalize_keep: keep must be a sorted subset of "
               "the scope");
  Table t = make_table(keep, kcards, nkeep, arena);
  marginalize_keep_into(f, keep, nkeep, t.values);
  return t;
}

void reduce_into(const View& f, std::size_t pos, std::size_t state,
                 double* out) {
  SYSUQ_EXPECT(pos < f.rank && f.rank <= kMaxRank,
               "kernels::reduce_into: position out of range");
  SYSUQ_EXPECT(state < f.cards[pos], "kernels::reduce_into: state out of range");
  std::size_t strides[kMaxRank];
  own_strides(f.cards, f.rank, strides);
  if (f.rank == 1) {
    out[0] = f.values[state];
    return;
  }
  // Output dimensions are the input dimensions minus `pos`; walk the
  // output in row-major order while tracking the input index
  // incrementally through the input strides.
  std::size_t ocards[kMaxRank], istr[kMaxRank];
  std::size_t orank = 0;
  for (std::size_t i = 0; i < f.rank; ++i) {
    if (i == pos) continue;
    ocards[orank] = f.cards[i];
    istr[orank] = strides[i];
    ++orank;
  }
  const std::size_t out_size = f.size / f.cards[pos];
  const std::size_t inner = orank - 1;
  const std::size_t cin = ocards[inner];
  const std::size_t sin = istr[inner];
  std::size_t idx[kMaxRank];
  std::fill(idx, idx + orank, std::size_t{0});
  std::size_t in = state * strides[pos];
  const double* v = f.values;
  const std::size_t blocks = out_size / cin;
  for (std::size_t blk = 0;;) {
    const double* pv = v + in;
    if (sin == 1) {
      for (std::size_t j = 0; j < cin; ++j) out[j] = pv[j];
    } else {
      for (std::size_t j = 0; j < cin; ++j) out[j] = pv[j * sin];
    }
    out += cin;
    if (++blk == blocks) break;
    for (std::size_t k = inner; k-- > 0;) {
      in += istr[k];
      if (++idx[k] < ocards[k]) break;
      in -= istr[k] * ocards[k];
      idx[k] = 0;
    }
  }
}

Table reduce(const View& f, VariableId v, std::size_t state, Arena& arena) {
  const VariableId* it = std::lower_bound(f.scope, f.scope + f.rank, v);
  SYSUQ_EXPECT(it != f.scope + f.rank && *it == v,
               "kernels::reduce: variable not in scope");
  const auto pos = static_cast<std::size_t>(it - f.scope);
  VariableId nscope[kMaxRank];
  std::size_t ncards[kMaxRank];
  std::size_t orank = 0;
  for (std::size_t i = 0; i < f.rank; ++i) {
    if (i == pos) continue;
    nscope[orank] = f.scope[i];
    ncards[orank] = f.cards[i];
    ++orank;
  }
  Table t = make_table(nscope, ncards, orank, arena);
  reduce_into(f, pos, state, t.values);
  return t;
}

double total(const double* values, std::size_t n) noexcept {
  if (n <= 32) {
    double s = 0.0;
    for (std::size_t i = 0; i < n; ++i) s += values[i];
    return s;
  }
  const std::size_t h = n / 2;
  return total(values, h) + total(values + h, n - h);
}

void scale(double* values, std::size_t n, double s) noexcept {
  for (std::size_t i = 0; i < n; ++i) values[i] *= s;
}

void to_log(const double* in, std::size_t n, double* out) {
  SYSUQ_EXPECT(std::all_of(in, in + n, [](double x) { return x >= 0.0; }),
               "kernels::to_log: values must be non-negative");
  for (std::size_t i = 0; i < n; ++i) out[i] = std::log(in[i]);
}

void from_log(const double* in, std::size_t n, double* out) noexcept {
  for (std::size_t i = 0; i < n; ++i) out[i] = std::exp(in[i]);
}

void log_product_into(const View& a, const View& b, const VariableId* scope,
                      const std::size_t* cards, std::size_t rank,
                      double* out) {
  SYSUQ_EXPECT(a.rank <= rank && b.rank <= rank,
               "kernels::log_product_into: operand rank exceeds merged rank");
  combine_into(
      a, b, scope, cards, rank, out,
      [](double x, double y) { return x + y; },
      "kernels::log_product_into: operand scopes must be subsets of the "
      "merged scope");
}

void log_marginalize_keep_into(const View& f, const VariableId* keep,
                               std::size_t nkeep, Arena& arena, double* out) {
  SYSUQ_EXPECT(f.rank <= kMaxRank,
               "kernels::log_marginalize_keep_into: rank exceeds kMaxRank");
  bool kept[kMaxRank];
  std::size_t pos = 0;
  for (std::size_t i = 0; i < f.rank; ++i) {
    if (pos < nkeep && f.scope[i] == keep[pos]) {
      kept[i] = true;
      ++pos;
    } else {
      kept[i] = false;
    }
  }
  SYSUQ_EXPECT(pos == nkeep,
               "kernels::log_marginalize_keep_into: keep must be a sorted "
               "subset of the scope");
  std::size_t out_stride[kMaxRank];
  std::size_t out_size = 1;
  for (std::size_t i = f.rank; i-- > 0;) {
    if (kept[i]) {
      out_stride[i] = out_size;
      out_size *= f.cards[i];
    } else {
      out_stride[i] = 0;
    }
  }
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  if (f.rank == 0) {
    out[0] = f.values[0];
    return;
  }
  // Max-shifted log-sum-exp per output cell, two passes over the input
  // with the same incremental output index walk as the linear kernel.
  double* cell_max = arena.alloc<double>(out_size);
  double* cell_acc = arena.alloc<double>(out_size);
  std::fill(cell_max, cell_max + out_size, kNegInf);
  std::fill(cell_acc, cell_acc + out_size, 0.0);

  const std::size_t inner = f.rank - 1;
  const std::size_t cin = f.cards[inner];
  const std::size_t sin_out = kept[inner] ? 1 : 0;
  const auto sweep = [&](auto&& visit) {
    std::size_t idx[kMaxRank];
    std::fill(idx, idx + f.rank, std::size_t{0});
    const double* v = f.values;
    std::size_t o = 0;
    const std::size_t blocks = f.size / cin;
    for (std::size_t blk = 0;;) {
      for (std::size_t j = 0; j < cin; ++j) visit(o + j * sin_out, v[j]);
      v += cin;
      if (++blk == blocks) break;
      for (std::size_t k = inner; k-- > 0;) {
        o += out_stride[k];
        if (++idx[k] < f.cards[k]) break;
        o -= out_stride[k] * f.cards[k];
        idx[k] = 0;
      }
    }
  };
  sweep([&](std::size_t o, double x) {
    if (x > cell_max[o]) cell_max[o] = x;
  });
  sweep([&](std::size_t o, double x) {
    if (x > kNegInf) cell_acc[o] += std::exp(x - cell_max[o]);
  });
  for (std::size_t o = 0; o < out_size; ++o) {
    out[o] = cell_acc[o] > 0.0 ? cell_max[o] + std::log(cell_acc[o]) : kNegInf;
  }
}

double log_total(const double* values, std::size_t n) noexcept {
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  double m = kNegInf;
  for (std::size_t i = 0; i < n; ++i) m = std::max(m, values[i]);
  if (!(m > kNegInf)) return kNegInf;
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (values[i] > kNegInf) acc += std::exp(values[i] - m);
  }
  return m + std::log(acc);
}

double ScaledFactor::log_total() const {
  return log_scale + std::log(factor.total());
}

ScaledFactor eliminate_scaled(std::vector<View> factors,
                              const std::vector<VariableId>& order,
                              Arena& arena) {
  ElimOutcome outcome = eliminate_core(factors, order, arena, /*rescale=*/true);
  if (outcome.impossible) {
    return ScaledFactor{Factor({}, {}, {0.0}),
                        -std::numeric_limits<double>::infinity()};
  }
  return ScaledFactor{materialize(outcome.result), outcome.log_scale};
}

Factor eliminate_linear(std::vector<View> factors,
                        const std::vector<VariableId>& order, Arena& arena) {
  ElimOutcome outcome =
      eliminate_core(factors, order, arena, /*rescale=*/false);
  return materialize(outcome.result);
}

Arena& thread_scratch() {
  static thread_local Arena arena;
  return arena;
}

}  // namespace sysuq::bayesnet::kernels
