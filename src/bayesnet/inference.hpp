// Inference over Bayesian networks.
//
// Three engines with one contract (posterior marginal of a query variable
// given evidence):
//  * VariableElimination — exact, the production path.
//  * enumeration oracle — exact by brute force; the test oracle.
//  * likelihood weighting / rejection sampling — approximate; used to
//    demonstrate sampling-vs-exact tradeoffs in the Fig. 4 bench.
#pragma once

#include <cstddef>
#include <vector>

#include <string>

#include "bayesnet/kernels.hpp"
#include "bayesnet/network.hpp"
#include "prob/discrete.hpp"
#include "prob/information.hpp"

namespace sysuq::bayesnet {

/// The one impossible-evidence error message used across every inference
/// entry point (`VariableElimination::query`/`joint`, `InferenceEngine`
/// queries, `enumerate_posterior`, `enumerate_mpe`, `likelihood_weighting`,
/// `rejection_sampling`). All of them throw `std::domain_error` with a
/// message that starts with exactly this text when P(evidence) = 0 (or,
/// for the samplers, when no draw is consistent with the evidence):
///
///   "bayesnet: impossible evidence (P(e) = 0): name=state[, name=state...]"
///
/// Evidence entries are listed in VariableId order using the network's
/// variable and state names; empty evidence renders as "(none)".
/// `likelihood_weighting` appends a suffix naming the attempted sample
/// count; every other entry point throws the text verbatim.
[[nodiscard]] std::string impossible_evidence_message(
    const BayesianNetwork& net, const Evidence& evidence);

/// Exact posterior P(query | evidence) by variable elimination with a
/// min-degree elimination ordering.
class VariableElimination {
 public:
  explicit VariableElimination(const BayesianNetwork& net);

  /// Posterior marginal of `query` given `evidence`. Throws
  /// std::domain_error with `impossible_evidence_message` if the evidence
  /// has probability zero.
  [[nodiscard]] prob::Categorical query(VariableId query,
                                        const Evidence& evidence = {}) const;

  /// Probability of the evidence, P(e).
  [[nodiscard]] double evidence_probability(const Evidence& evidence) const;

  /// Exact joint distribution of two distinct variables given evidence,
  /// as a JointTable (rows = a, cols = b) — feeds the conditional-entropy
  /// "surprise factor" measures.
  [[nodiscard]] prob::JointTable joint(VariableId a, VariableId b,
                                       const Evidence& evidence = {}) const;

 private:
  const BayesianNetwork& net_;

  /// Scaled elimination of everything but `keep`: the returned factor
  /// carries a log normalizer so deep-evidence chains cannot underflow
  /// the linear total to exact zero (see kernels::eliminate_scaled).
  [[nodiscard]] kernels::ScaledFactor eliminate_all_but(
      const std::vector<VariableId>& keep, const Evidence& evidence) const;
};

/// Exact posterior by full joint enumeration — O(prod of cardinalities).
/// Only for small networks; serves as the ground-truth oracle in tests.
[[nodiscard]] prob::Categorical enumerate_posterior(const BayesianNetwork& net,
                                                    VariableId query,
                                                    const Evidence& evidence = {});

/// Probability of an evidence assignment by enumeration.
[[nodiscard]] double enumerate_evidence_probability(const BayesianNetwork& net,
                                                    const Evidence& evidence);

/// Most probable explanation: the full joint assignment maximizing
/// P(x | evidence), with its (conditional) probability. Exhaustive —
/// intended for the small diagnostic networks this library builds;
/// throws std::domain_error if the evidence is impossible.
struct MpeResult {
  std::vector<std::size_t> assignment;  ///< one state per variable
  double probability;                   ///< P(assignment | evidence)
};
[[nodiscard]] MpeResult enumerate_mpe(const BayesianNetwork& net,
                                      const Evidence& evidence = {});

/// Approximate posterior by likelihood weighting with `samples` draws.
/// Throws std::domain_error if every sample receives weight zero
/// (evidence hitting zero CPT rows); the message is
/// `impossible_evidence_message` plus a " (likelihood weighting: all N
/// samples had weight zero)" suffix naming the attempted sample count.
/// Records the Kish effective sample size of each successful run on the
/// obs gauge `bayesnet.sampling.effective_sample_size`.
[[nodiscard]] prob::Categorical likelihood_weighting(const BayesianNetwork& net,
                                                     VariableId query,
                                                     const Evidence& evidence,
                                                     std::size_t samples,
                                                     prob::Rng& rng);

/// Approximate posterior by rejection sampling. Returns the accepted
/// count through `accepted` if non-null (to expose the rejection rate).
[[nodiscard]] prob::Categorical rejection_sampling(const BayesianNetwork& net,
                                                   VariableId query,
                                                   const Evidence& evidence,
                                                   std::size_t samples,
                                                   prob::Rng& rng,
                                                   std::size_t* accepted = nullptr);

}  // namespace sysuq::bayesnet
