// Factors (potentials) over sets of discrete variables, with the algebra
// needed by variable elimination: product, marginalization, reduction.
#pragma once

#include <cstddef>
#include <vector>

#include "bayesnet/variable.hpp"

namespace sysuq::bayesnet {

/// A non-negative table over the Cartesian product of its scope's state
/// spaces. Scope is kept sorted by VariableId so factor products align.
///
/// Indexing: values are stored row-major with the *last* scope variable
/// varying fastest.
class Factor {
 public:
  /// Constructs a factor; `scope` must be strictly increasing; `cards`
  /// parallel to scope; `values.size()` must equal the product of cards.
  Factor(std::vector<VariableId> scope, std::vector<std::size_t> cards,
         std::vector<double> values);

  /// The constant factor 1 over an empty scope.
  [[nodiscard]] static Factor unit();

  [[nodiscard]] const std::vector<VariableId>& scope() const { return scope_; }
  [[nodiscard]] const std::vector<std::size_t>& cardinalities() const {
    return cards_;
  }
  [[nodiscard]] const std::vector<double>& values() const { return values_; }
  [[nodiscard]] std::size_t size() const { return values_.size(); }

  /// True if `v` appears in the scope.
  [[nodiscard]] bool contains(VariableId v) const;

  /// Value at a full assignment of the scope variables (states parallel
  /// to scope order).
  [[nodiscard]] double at(const std::vector<std::size_t>& states) const;

  /// Pointwise product; scopes are merged (union).
  [[nodiscard]] Factor product(const Factor& other) const;

  /// Sums out one variable from the scope.
  [[nodiscard]] Factor marginalize(VariableId v) const;

  /// Restricts one scope variable to a fixed state (evidence); the
  /// variable leaves the scope.
  [[nodiscard]] Factor reduce(VariableId v, std::size_t state) const;

  /// Normalizes so all values sum to 1; throws if the sum is zero
  /// (evidence with zero probability).
  [[nodiscard]] Factor normalized() const;

  /// Sum of all values.
  [[nodiscard]] double total() const;

 private:
  std::vector<VariableId> scope_;
  std::vector<std::size_t> cards_;
  std::vector<double> values_;

  /// Converts a per-scope-variable state vector to a flat index.
  [[nodiscard]] std::size_t flat_index(const std::vector<std::size_t>& states) const;
};

}  // namespace sysuq::bayesnet
