#include "bayesnet/inference.hpp"

#include "core/contracts.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>

#include "bayesnet/ordering.hpp"
#include "core/tolerance.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace sysuq::bayesnet {

namespace {

// Instruments resolved once; hot paths touch only the atomics.
struct VeMetrics {
  obs::Counter& queries;
  obs::Histogram& query_seconds;

  static VeMetrics& instance() {
    static VeMetrics m{
        obs::Registry::global().counter("bayesnet.ve.queries"),
        obs::Registry::global().histogram("bayesnet.ve.query_seconds",
                                          obs::seconds_buckets())};
    return m;
  }
};

struct SamplingMetrics {
  obs::Gauge& effective_sample_size;
  obs::Counter& zero_weight_samples;
  obs::Counter& degenerate_failures;
  obs::Counter& rejected_samples;

  static SamplingMetrics& instance() {
    auto& registry = obs::Registry::global();
    static SamplingMetrics m{
        registry.gauge("bayesnet.sampling.effective_sample_size"),
        registry.counter("bayesnet.sampling.zero_weight_samples"),
        registry.counter("bayesnet.sampling.degenerate_failures"),
        registry.counter("bayesnet.sampling.rejected_samples")};
    return m;
  }
};

}  // namespace

std::string impossible_evidence_message(const BayesianNetwork& net,
                                        const Evidence& evidence) {
  std::string msg = "bayesnet: impossible evidence (P(e) = 0): ";
  if (evidence.empty()) {
    msg += "(none)";
    return msg;
  }
  bool first = true;
  for (const auto& [v, state] : evidence) {  // map: VariableId order
    if (!first) msg += ", ";
    first = false;
    const Variable& var = net.variable(v);
    msg += var.name();
    msg += '=';
    msg += var.state_name(state);
  }
  return msg;
}

VariableElimination::VariableElimination(const BayesianNetwork& net) : net_(net) {
  net_.validate();
}

kernels::ScaledFactor VariableElimination::eliminate_all_but(
    const std::vector<VariableId>& keep, const Evidence& evidence) const {
  // Collect CPT factors; evidence-bearing ones are reduced into the
  // per-thread arena, the rest are viewed in place. Only the final
  // result is materialized (by eliminate_scaled), so the arena can be
  // reset before returning.
  Arena& arena = kernels::thread_scratch();
  arena.reset();
  std::vector<Factor> owned;
  owned.reserve(net_.size());
  std::vector<kernels::View> views;
  views.reserve(net_.size());
  for (VariableId v = 0; v < net_.size(); ++v) {
    owned.push_back(net_.cpt_factor(v));
    kernels::View view = kernels::view_of(owned.back());
    for (const auto& [ev, state] : evidence) {
      if (view.contains(ev))
        view = kernels::reduce(view, ev, state, arena).view();
    }
    views.push_back(view);
  }

  std::vector<VariableId> evidence_keys;
  evidence_keys.reserve(evidence.size());
  for (const auto& [ev, _] : evidence) evidence_keys.push_back(ev);

  const EliminationOrdering ordering =
      compute_elimination_order(net_, keep, evidence_keys);
  kernels::ScaledFactor out =
      kernels::eliminate_scaled(std::move(views), ordering.order, arena);
  arena.reset();
  return out;
}

prob::Categorical VariableElimination::query(VariableId query,
                                             const Evidence& evidence) const {
  auto& metrics = VeMetrics::instance();
  const obs::Span span("bayesnet.ve.query");
  const obs::HistogramTimer timer(metrics.query_seconds);
  metrics.queries.inc();
  if (evidence.contains(query)) {
    // Querying an observed variable returns its point mass.
    return prob::Categorical::delta(evidence.at(query),
                                    net_.variable(query).cardinality());
  }
  const kernels::ScaledFactor sf = eliminate_all_but({query}, evidence);
  if (sf.impossible())
    throw std::domain_error(impossible_evidence_message(net_, evidence));
  const Factor& f = sf.factor;
  if (f.scope().size() != 1 || f.scope()[0] != query)
    throw std::logic_error("VariableElimination: unexpected result scope");
  return prob::Categorical(f.normalized().values());
}

double VariableElimination::evidence_probability(const Evidence& evidence) const {
  const kernels::ScaledFactor sf = eliminate_all_but({}, evidence);
  // exp(log_scale) is exactly 1 unless a rescale fired, so ordinary
  // queries return the unscaled total bit for bit; rescaled runs may
  // still underflow the linear return value (a double cannot represent
  // P(e) ~ 1e-800), but no longer report a hard zero as impossible.
  return sf.factor.total() * std::exp(sf.log_scale);
}

prob::JointTable VariableElimination::joint(VariableId a, VariableId b,
                                            const Evidence& evidence) const {
  if (a == b) throw std::invalid_argument("VariableElimination::joint: a == b");
  if (evidence.contains(a) || evidence.contains(b))
    throw std::invalid_argument(
        "VariableElimination::joint: query variable in evidence");
  const kernels::ScaledFactor sf = eliminate_all_but({a, b}, evidence);
  if (sf.impossible())
    throw std::domain_error(impossible_evidence_message(net_, evidence));
  const Factor f = sf.factor.normalized();
  const std::size_t ca = net_.variable(a).cardinality();
  const std::size_t cb = net_.variable(b).cardinality();
  // Factor scope is sorted; map into (a-rows, b-cols).
  const bool a_first = a < b;
  std::vector<std::vector<double>> table(ca, std::vector<double>(cb, 0.0));
  for (std::size_t i = 0; i < ca; ++i) {
    for (std::size_t j = 0; j < cb; ++j) {
      table[i][j] = a_first ? f.at({i, j}) : f.at({j, i});
    }
  }
  return prob::JointTable(std::move(table));
}

namespace {

// Iterates all full joint assignments, invoking fn(state, probability).
template <typename Fn>
void for_each_joint(const BayesianNetwork& net, Fn&& fn) {
  net.validate();
  const auto order = net.topological_order();
  std::vector<std::size_t> state(net.size(), 0);
  std::vector<std::size_t> cards(net.size());
  for (VariableId v = 0; v < net.size(); ++v)
    cards[v] = net.variable(v).cardinality();

  std::size_t total = 1;
  for (std::size_t c : cards) total *= c;

  for (std::size_t flat = 0; flat < total; ++flat) {
    double p = 1.0;
    for (VariableId v : order) {
      const auto& ps = net.parents(v);
      std::vector<std::size_t> pstates(ps.size());
      for (std::size_t i = 0; i < ps.size(); ++i) pstates[i] = state[ps[i]];
      p *= net.cpt_row(v, pstates).p(state[v]);
      if (p == 0.0) break;  // sysuq-lint-allow(float-eq): zero mass short-circuit
    }
    fn(state, p);
    for (std::size_t k = net.size(); k-- > 0;) {
      if (++state[k] < cards[k]) break;
      state[k] = 0;
    }
  }
}

bool consistent(const std::vector<std::size_t>& state, const Evidence& evidence) {
  for (const auto& [v, s] : evidence) {
    if (state[v] != s) return false;
  }
  return true;
}

}  // namespace

prob::Categorical enumerate_posterior(const BayesianNetwork& net,
                                      VariableId query, const Evidence& evidence) {
  std::vector<double> weights(net.variable(query).cardinality(), 0.0);
  for_each_joint(net, [&](const std::vector<std::size_t>& state, double p) {
    if (consistent(state, evidence)) weights[state[query]] += p;
  });
  if (std::all_of(weights.begin(), weights.end(),
                  [](double w) { return w == 0.0; }))  // sysuq-lint-allow(float-eq): detect exactly-zero weights
    throw std::domain_error(impossible_evidence_message(net, evidence));
  return prob::Categorical::normalized(std::move(weights));
}

double enumerate_evidence_probability(const BayesianNetwork& net,
                                      const Evidence& evidence) {
  // Neumaier compensated summation: the correction term recovers the
  // low-order bits a naive left fold sheds over prod(cardinalities)
  // terms, so the postcondition can use the degeneracy guard kTiny
  // instead of the kProbSum slack PR 5 had to grant the naive sum.
  double total = 0.0;
  double comp = 0.0;
  for_each_joint(net, [&](const std::vector<std::size_t>& state, double p) {
    if (!consistent(state, evidence)) return;
    const double t = total + p;
    if (std::abs(total) >= std::abs(p)) {
      comp += (total - t) + p;
    } else {
      comp += (p - t) + total;
    }
    total = t;
  });
  total += comp;
  SYSUQ_ENSURE(std::isfinite(total) &&
                   total >= -tolerance::kTiny &&
                   total <= 1.0 + tolerance::kTiny,
               "enumerate_evidence_probability: result outside [0, 1]");
  return total;
}

MpeResult enumerate_mpe(const BayesianNetwork& net, const Evidence& evidence) {
  MpeResult best{{}, -1.0};
  double evidence_mass = 0.0;
  for_each_joint(net, [&](const std::vector<std::size_t>& state, double p) {
    if (!consistent(state, evidence)) return;
    evidence_mass += p;
    if (p > best.probability) {
      best.probability = p;
      best.assignment = state;
    }
  });
  if (!(evidence_mass > 0.0))
    throw std::domain_error(impossible_evidence_message(net, evidence));
  best.probability /= evidence_mass;
  return best;
}

prob::Categorical likelihood_weighting(const BayesianNetwork& net,
                                       VariableId query, const Evidence& evidence,
                                       std::size_t samples, prob::Rng& rng) {
  SYSUQ_EXPECT(samples != 0, "likelihood_weighting: zero samples");
  net.validate();
  auto& metrics = SamplingMetrics::instance();
  const obs::Span span("bayesnet.sampling.likelihood_weighting");
  const auto order = net.topological_order();
  std::vector<double> weights(net.variable(query).cardinality(), 0.0);
  std::vector<std::size_t> state(net.size(), 0);
  double sum_w = 0.0;
  double sum_w2 = 0.0;
  std::uint64_t zero_weight = 0;
  for (std::size_t s = 0; s < samples; ++s) {
    double w = 1.0;
    for (VariableId v : order) {
      const auto& ps = net.parents(v);
      std::vector<std::size_t> pstates(ps.size());
      for (std::size_t i = 0; i < ps.size(); ++i) pstates[i] = state[ps[i]];
      const auto& row = net.cpt_row(v, pstates);
      const auto it = evidence.find(v);
      if (it != evidence.end()) {
        state[v] = it->second;
        w *= row.p(it->second);
      } else {
        state[v] = row.sample(rng);
      }
    }
    weights[state[query]] += w;
    sum_w += w;
    sum_w2 += w * w;
    if (w == 0.0) ++zero_weight;  // sysuq-lint-allow(float-eq): exact zero-mass draw
  }
  metrics.zero_weight_samples.inc(zero_weight);
  // Every sample weighted zero: the evidence hit zero CPT rows along all
  // sampled parent configurations. Normalizing would divide by zero — fail
  // loudly, naming the evidence and how many draws were attempted (mirrors
  // rejection sampling's zero-accept behaviour).
  if (zero_weight == samples) {
    metrics.degenerate_failures.inc();
    throw std::domain_error(impossible_evidence_message(net, evidence) +
                            " (likelihood weighting: all " +
                            std::to_string(samples) +
                            " samples had weight zero)");
  }
  // Kish effective sample size (sum w)^2 / sum w^2 — how many unweighted
  // draws this weighted run is worth.
  metrics.effective_sample_size.set(sum_w * sum_w / sum_w2);
  return prob::Categorical::normalized(std::move(weights));
}

prob::Categorical rejection_sampling(const BayesianNetwork& net, VariableId query,
                                     const Evidence& evidence, std::size_t samples,
                                     prob::Rng& rng, std::size_t* accepted) {
  SYSUQ_EXPECT(samples != 0, "rejection_sampling: zero samples");
  net.validate();
  auto& metrics = SamplingMetrics::instance();
  const obs::Span span("bayesnet.sampling.rejection_sampling");
  std::vector<double> counts(net.variable(query).cardinality(), 0.0);
  std::size_t acc = 0;
  for (std::size_t s = 0; s < samples; ++s) {
    const auto state = net.sample(rng);
    if (!consistent(state, evidence)) continue;
    counts[state[query]] += 1.0;
    ++acc;
  }
  metrics.rejected_samples.inc(samples - acc);
  if (accepted != nullptr) *accepted = acc;
  if (acc == 0) {
    metrics.degenerate_failures.inc();
    throw std::domain_error(impossible_evidence_message(net, evidence));
  }
  return prob::Categorical::normalized(std::move(counts));
}

}  // namespace sysuq::bayesnet
