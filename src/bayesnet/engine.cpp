#include "bayesnet/engine.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <set>
#include <stdexcept>
#include <thread>

#include "bayesnet/inference.hpp"
#include "core/contracts.hpp"
#include "obs/context.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "prob/rng.hpp"

namespace sysuq::bayesnet {

namespace {

// Engine instruments, registered once on first use. Counters aggregate
// across every engine in the process; per-engine windows come from
// cache_stats().
struct EngineMetrics {
  obs::Histogram& query_seconds;
  obs::Histogram& elimination_width;
  obs::Counter& queries;
  obs::Counter& batch_queries;
  obs::Counter& sampled_queries;
  obs::Counter& cache_hits;
  obs::Counter& cache_misses;
  obs::Gauge& cache_entries;
  obs::Counter& jt_queries;
  obs::Counter& jt_cache_hits;
  obs::Counter& jt_cache_misses;
  obs::Gauge& jt_cache_entries;
  obs::Counter& bp_queries;
  obs::Counter& bp_escalations;
  obs::Counter& bp_cache_hits;
  obs::Counter& bp_cache_misses;
  obs::Gauge& bp_cache_entries;

  static EngineMetrics& instance() {
    auto& reg = obs::Registry::global();
    static EngineMetrics m{
        reg.histogram("bayesnet.engine.query_seconds", obs::seconds_buckets()),
        reg.histogram("bayesnet.engine.elimination_width",
                      {1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0, 32.0}),
        reg.counter("bayesnet.engine.queries"),
        reg.counter("bayesnet.engine.batch_queries"),
        reg.counter("bayesnet.engine.sampled_queries"),
        reg.counter("bayesnet.engine.ordering_cache.hits"),
        reg.counter("bayesnet.engine.ordering_cache.misses"),
        reg.gauge("bayesnet.engine.ordering_cache.entries"),
        reg.counter("bayesnet.jt.queries"),
        reg.counter("bayesnet.jt.cache.hits"),
        reg.counter("bayesnet.jt.cache.misses"),
        reg.gauge("bayesnet.jt.cache.entries"),
        reg.counter("bayesnet.bp.queries"),
        reg.counter("bayesnet.bp.escalations"),
        reg.counter("bayesnet.bp.cache.hits"),
        reg.counter("bayesnet.bp.cache.misses"),
        reg.gauge("bayesnet.bp.cache.entries"),
    };
    return m;
  }
};

}  // namespace

// A fixed pool of background workers plus the calling thread. `run` hands
// out task indices through an atomic counter, so work distribution adapts
// to scheduling while result slots stay fixed per index.
class InferenceEngine::Pool {
 public:
  explicit Pool(std::size_t workers) {
    threads_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) {
      threads_.emplace_back([this] { worker(); });
    }
  }

  ~Pool() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
    }
    cv_work_.notify_all();
    for (auto& t : threads_) t.join();
  }

  /// Runs fn(0), .., fn(total - 1) across the workers and the calling
  /// thread; blocks until every index has been processed AND every
  /// worker that entered the batch has dropped its reference to `fn`.
  /// `fn` must not throw. Concurrent `run` calls are serialized.
  void run(std::size_t total, const std::function<void(std::size_t)>& fn) {
    if (total == 0) return;
    std::lock_guard<std::mutex> serialize(run_mu_);
    {
      std::lock_guard<std::mutex> lk(mu_);
      fn_ = &fn;
      total_ = total;
      next_.store(0, std::memory_order_relaxed);
      completed_.store(0, std::memory_order_relaxed);
      ++generation_;
    }
    cv_work_.notify_all();
    work();  // the caller participates
    {
      // Waiting on completed_ alone is not enough: a worker that read
      // `fn_` but stalled before claiming an index still holds the
      // pointer after all indices finish. Returning then would let the
      // caller destroy `fn` (or start the next batch) while the stalled
      // worker can still dereference it — a use-after-free. active_
      // counts workers inside work(); drain them before returning.
      std::unique_lock<std::mutex> lk(mu_);
      cv_done_.wait(lk, [&] {  // sysuq-lint-allow(lock-order): run_mu_ only serializes run() callers; workers signalling cv_done_ never take it, so holding it across the wait cannot deadlock
        return completed_.load(std::memory_order_relaxed) == total_ &&
               active_ == 0;
      });
      fn_ = nullptr;
    }
  }

 private:
  // sysuq-excludes(mu_)
  void work() {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t total = 0;
    {
      std::lock_guard<std::mutex> lk(mu_);
      fn = fn_;
      total = total_;
      if (fn != nullptr) ++active_;
    }
    if (fn == nullptr) return;  // late wake-up after the batch finished
    for (;;) {
      const std::size_t i = next_.fetch_add(1);
      if (i >= total) break;
      (*fn)(i);
      completed_.fetch_add(1);
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      --active_;
      // Signal on both conditions from under the lock: all indices done
      // and this worker no longer references fn.
      if (completed_.load(std::memory_order_relaxed) == total_ &&
          active_ == 0) {
        cv_done_.notify_all();
      }
    }
  }

  void worker() {
    std::uint64_t seen = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> lk(mu_);
        cv_work_.wait(lk, [&] { return stop_ || generation_ != seen; });
        if (stop_) return;
        seen = generation_;
      }
      work();
    }
  }

  std::mutex run_mu_;  // serializes whole batches
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  const std::function<void(std::size_t)>* fn_ = nullptr;  // sysuq-guarded-by(mu_)
  std::size_t total_ = 0;                                 // sysuq-guarded-by(mu_)
  std::atomic<std::size_t> next_{0};
  std::atomic<std::size_t> completed_{0};
  std::uint64_t generation_ = 0;  // sysuq-guarded-by(mu_)
  // Workers inside work() holding fn_.  sysuq-guarded-by(mu_)
  std::size_t active_ = 0;
  bool stop_ = false;  // sysuq-guarded-by(mu_)
  // Joined in the destructor, never resized after construction.
  std::vector<std::thread> threads_;  // sysuq-thread-confined(init)
};

InferenceEngine::InferenceEngine(const BayesianNetwork& net)
    : InferenceEngine(net, Options{}) {}

InferenceEngine::InferenceEngine(const BayesianNetwork& net, Options options)
    : net_(net), options_(options) {
  net_.validate();
  threads_ = options_.threads != 0
                 ? options_.threads
                 : std::max<std::size_t>(1, std::thread::hardware_concurrency());
  cpt_factors_.reserve(net_.size());
  for (VariableId v = 0; v < net_.size(); ++v) {
    cpt_factors_.push_back(net_.cpt_factor(v));
  }
  if (threads_ > 1) pool_ = std::make_unique<Pool>(threads_ - 1);
}

InferenceEngine::~InferenceEngine() = default;

std::shared_ptr<const EliminationOrdering> InferenceEngine::ordering_for(
    const Evidence& evidence) const {
  OrderingKey key;
  key.reserve(evidence.size());
  for (const auto& [v, _] : evidence) key.push_back(v);  // map: sorted

  auto& metrics = EngineMetrics::instance();
  {
    std::lock_guard<std::mutex> lk(cache_mu_);
    if (const auto it = cache_.find(key); it != cache_.end()) {
      ++cache_hits_;
      metrics.cache_hits.inc();
      return it->second;
    }
  }
  // Miss. The ordering heuristics walk the whole moral graph — far too
  // slow to run under cache_mu_, where a cold cache would serialize
  // every concurrent query. Compute unlocked; on a race the first
  // insert wins and the duplicate ordering is dropped (both threads
  // ran the same deterministic heuristic, so the results are equal).
  auto ordering = std::make_shared<const EliminationOrdering>(
      compute_elimination_order(net_, /*keep=*/{}, key, options_.heuristic));
  std::lock_guard<std::mutex> lk(cache_mu_);
  ++cache_misses_;
  metrics.cache_misses.inc();
  const auto [it, inserted] = cache_.emplace(std::move(key), std::move(ordering));
  metrics.cache_entries.set(static_cast<double>(cache_.size()));
  return it->second;
}

kernels::ScaledFactor InferenceEngine::eliminate_all_but(
    const std::vector<VariableId>& keep, const Evidence& evidence) const {
  const auto ordering = ordering_for(evidence);
  EngineMetrics::instance().elimination_width.observe(
      static_cast<double>(ordering->induced_width));
  // Cached CPT factors are viewed in place; only evidence-bearing ones
  // are reduced (into the arena). No per-query deep copies.
  Arena& arena = kernels::thread_scratch();
  arena.reset();
  std::vector<kernels::View> views;
  views.reserve(cpt_factors_.size());
  for (const Factor& base : cpt_factors_) {
    kernels::View view = kernels::view_of(base);
    for (const auto& [ev, state] : evidence) {
      if (view.contains(ev))
        view = kernels::reduce(view, ev, state, arena).view();
    }
    views.push_back(view);
  }
  // The cached plan eliminates every unobserved variable; skipping the
  // kept ones at execution time keeps them in the result scope (any
  // suffix-restricted order is still exact).
  std::vector<VariableId> order;
  order.reserve(ordering->order.size());
  for (VariableId v : ordering->order) {
    if (keep.empty() || std::find(keep.begin(), keep.end(), v) == keep.end())
      order.push_back(v);
  }
  kernels::ScaledFactor out =
      kernels::eliminate_scaled(std::move(views), order, arena);
  last_ve_arena_high_water_.store(arena.bytes_used(),
                                  std::memory_order_relaxed);
  arena.reset();
  return out;
}

std::shared_ptr<const JunctionTree> InferenceEngine::calibrated_tree_for(
    const Evidence& evidence) const {
  TreeKey key(evidence.begin(), evidence.end());  // map: sorted pairs
  auto& metrics = EngineMetrics::instance();
  {
    std::lock_guard<std::mutex> lk(cache_mu_);
    if (const auto it = jt_cache_.find(key); it != jt_cache_.end()) {
      ++jt_cache_hits_;
      metrics.jt_cache_hits.inc();
      return it->second;
    }
    ++jt_cache_misses_;
    metrics.jt_cache_misses.inc();
  }
  // Calibrated outside the lock so concurrent batch groups build in
  // parallel; a racing builder produces an identical tree (construction
  // is deterministic), so first-insert-wins is harmless.
  auto tree =
      std::make_shared<const JunctionTree>(net_, evidence, options_.heuristic);
  std::lock_guard<std::mutex> lk(cache_mu_);
  const auto it = jt_cache_.emplace(std::move(key), std::move(tree)).first;
  metrics.jt_cache_entries.set(static_cast<double>(jt_cache_.size()));
  return it->second;
}

std::shared_ptr<const LoopyBP> InferenceEngine::bp_for(
    const Evidence& evidence) const {
  TreeKey key(evidence.begin(), evidence.end());  // map: sorted pairs
  auto& metrics = EngineMetrics::instance();
  {
    std::lock_guard<std::mutex> lk(cache_mu_);
    if (const auto it = bp_cache_.find(key); it != bp_cache_.end()) {
      ++bp_cache_hits_;
      metrics.bp_cache_hits.inc();
      return it->second;
    }
    ++bp_cache_misses_;
    metrics.bp_cache_misses.inc();
  }
  // Run outside the lock (first insert wins; the schedule is
  // deterministic, so racing builders agree byte for byte). A run that
  // oscillates under the configured damping gets one deterministic
  // retry at damping 0.5 — the standard fix for flooding-schedule
  // limit cycles — and the converged run is kept.
  auto bp = std::make_shared<const LoopyBP>(net_, evidence, options_.bp);
  if (!bp->converged() && options_.bp.damping < 0.5) {
    LoopyBP::Options damped = options_.bp;
    damped.damping = 0.5;
    auto retry = std::make_shared<const LoopyBP>(net_, evidence, damped);
    if (retry->converged()) bp = std::move(retry);
  }
  std::lock_guard<std::mutex> lk(cache_mu_);
  const auto it = bp_cache_.emplace(std::move(key), std::move(bp)).first;
  metrics.bp_cache_entries.set(static_cast<double>(bp_cache_.size()));
  return it->second;
}

std::size_t InferenceEngine::exact_plan_max_cells(
    const Evidence& evidence) const {
  OrderingKey key;
  key.reserve(evidence.size());
  for (const auto& [v, _] : evidence) key.push_back(v);  // map: sorted
  std::shared_ptr<const EliminationOrdering> cached;
  {
    std::lock_guard<std::mutex> lk(cache_mu_);
    if (const auto it = plan_cells_.find(key); it != plan_cells_.end())
      return it->second;
    if (const auto it = cache_.find(key); it != cache_.end())
      cached = it->second;
  }
  // One symbolic replay of the full-elimination plan per evidence-keys
  // signature. Stats-invisible by design: an already-cached ordering is
  // read without counting, and a cold signature runs the heuristic
  // privately without inserting — the guard is a pre-flight check, and
  // the documented ordering-cache accounting stays owned by the query
  // paths alone.
  EliminationOrdering local;
  const EliminationOrdering* ordering = cached.get();
  if (ordering == nullptr) {
    local = compute_elimination_order(net_, /*keep=*/{}, key,
                                      options_.heuristic);
    ordering = &local;
  }
  const auto steps = simulate_elimination(net_, evidence, ordering->order, {});
  std::size_t max_cells = 0;
  for (const auto& step : steps) max_cells = std::max(max_cells, step.table_cells);
  std::lock_guard<std::mutex> lk(cache_mu_);
  return plan_cells_.emplace(std::move(key), max_cells).first->second;
}

bool InferenceEngine::auto_escalates_to_bp(const Evidence& evidence) const {
  if (options_.backend != Backend::kAuto) return false;
  const std::size_t cells = exact_plan_max_cells(evidence);
  if (cells <= options_.max_exact_table_cells) return false;
  if (!options_.enable_bp) {
    contracts::fail(
        "precondition", "exact_plan_max_cells <= max_exact_table_cells",
        "InferenceEngine: exact inference is infeasible (largest elimination "
        "table needs " +
            std::to_string(cells) + " cells, ceiling " +
            std::to_string(options_.max_exact_table_cells) +
            ") and Options::enable_bp is false — raise max_exact_table_cells "
            "or enable the loopy-BP escalation");
    return false;  // contracts::Mode::kOff: fall through to the exact path
  }
  EngineMetrics::instance().bp_escalations.inc();
  return true;
}

prob::Categorical InferenceEngine::query_ve(VariableId query,
                                            const Evidence& evidence) const {
  const kernels::ScaledFactor sf = eliminate_all_but({query}, evidence);
  if (sf.impossible())
    throw std::domain_error(impossible_evidence_message(net_, evidence));
  const Factor& f = sf.factor;
  if (f.scope().size() != 1 || f.scope()[0] != query)
    throw std::logic_error("InferenceEngine: unexpected result scope");
  return prob::Categorical::normalized(f.values());
}

prob::Categorical InferenceEngine::query(VariableId query,
                                         const Evidence& evidence) const {
  auto& metrics = EngineMetrics::instance();
  const obs::Span span("bayesnet.engine.query");
  // Latency is sampled 1-in-8: a kernel-backed query runs in
  // single-digit microseconds, so timing every one (two clock reads +
  // an observe) would alone breach the documented 2% obs budget. The
  // `queries` counter stays exact; only the histogram is sampled.
  static std::atomic<std::uint64_t> sample_seq{0};
  std::optional<obs::HistogramTimer> timer;
  if ((sample_seq.fetch_add(1, std::memory_order_relaxed) & 7u) == 0)
    timer.emplace(metrics.query_seconds);
  metrics.queries.inc();
  if (query >= net_.size())
    throw std::out_of_range("InferenceEngine::query: variable id");
  if (evidence.contains(query)) {
    return prob::Categorical::delta(evidence.at(query),
                                    net_.variable(query).cardinality());
  }
  if (options_.backend == Backend::kJunctionTree) {
    metrics.jt_queries.inc();
    return calibrated_tree_for(evidence)->query(query);
  }
  if (options_.backend == Backend::kLoopyBP || auto_escalates_to_bp(evidence)) {
    metrics.bp_queries.inc();
    return bp_for(evidence)->query(query).point;
  }
  return query_ve(query, evidence);
}

BoundedPosterior InferenceEngine::query_bounded(VariableId query,
                                                const Evidence& evidence) const {
  const obs::Span span("bayesnet.engine.query_bounded");
  EngineMetrics::instance().bp_queries.inc();
  if (query >= net_.size())
    throw std::out_of_range("InferenceEngine::query: variable id");
  return bp_for(evidence)->query(query);
}

std::vector<BoundedPosterior> InferenceEngine::all_marginals_bounded(
    const Evidence& evidence) const {
  const obs::Span span("bayesnet.engine.all_marginals_bounded");
  EngineMetrics::instance().bp_queries.inc(net_.size());
  return bp_for(evidence)->all_marginals();
}

std::vector<prob::Categorical> InferenceEngine::all_marginals(
    const Evidence& evidence) const {
  const obs::Span span("bayesnet.engine.all_marginals");
  if (options_.backend == Backend::kVariableElimination) {
    std::vector<prob::Categorical> out;
    out.reserve(net_.size());
    for (VariableId v = 0; v < net_.size(); ++v)
      out.push_back(query(v, evidence));
    return out;
  }
  if (options_.backend == Backend::kLoopyBP || auto_escalates_to_bp(evidence)) {
    EngineMetrics::instance().bp_queries.inc(net_.size());
    const auto& bounded = bp_for(evidence)->all_marginals();
    std::vector<prob::Categorical> out;
    out.reserve(bounded.size());
    for (const auto& b : bounded) out.push_back(b.point);
    return out;
  }
  const auto tree = calibrated_tree_for(evidence);
  EngineMetrics::instance().jt_queries.inc(net_.size());
  return tree->all_marginals();
}

double InferenceEngine::evidence_probability(const Evidence& evidence) const {
  if (options_.backend == Backend::kJunctionTree)
    return calibrated_tree_for(evidence)->evidence_probability();
  const kernels::ScaledFactor sf = eliminate_all_but({}, evidence);
  // exp(log_scale) is exactly 1 unless a rescale fired, so the common
  // case returns the unscaled total bit for bit.
  return sf.factor.total() * std::exp(sf.log_scale);
}

double InferenceEngine::log_evidence_probability(
    const Evidence& evidence) const {
  if (options_.backend != Backend::kVariableElimination)
    return calibrated_tree_for(evidence)->log_evidence_probability();
  // The scaled path keeps log P(e) finite even when the linear value
  // underflows a double (deep evidence chains).
  return eliminate_all_but({}, evidence).log_total();
}

prob::JointTable InferenceEngine::joint(VariableId a, VariableId b,
                                        const Evidence& evidence) const {
  if (a == b) throw std::invalid_argument("InferenceEngine::joint: a == b");
  if (evidence.contains(a) || evidence.contains(b))
    throw std::invalid_argument(
        "InferenceEngine::joint: query variable in evidence");
  const kernels::ScaledFactor sf = eliminate_all_but({a, b}, evidence);
  if (sf.impossible())
    throw std::domain_error(impossible_evidence_message(net_, evidence));
  const Factor f = sf.factor.normalized();
  const std::size_t ca = net_.variable(a).cardinality();
  const std::size_t cb = net_.variable(b).cardinality();
  const bool a_first = a < b;
  std::vector<std::vector<double>> table(ca, std::vector<double>(cb, 0.0));
  for (std::size_t i = 0; i < ca; ++i) {
    for (std::size_t j = 0; j < cb; ++j) {
      table[i][j] = a_first ? f.at({i, j}) : f.at({j, i});
    }
  }
  return prob::JointTable(std::move(table));
}

std::vector<prob::Categorical> InferenceEngine::query_batch(
    const std::vector<QuerySpec>& batch) const {
  const obs::Span span("bayesnet.engine.query_batch");
  // Capture the batch span's context *after* opening it, so every task
  // — on workers and on this thread — parents into this batch's trace
  // instead of fragmenting into per-worker roots.
  const obs::TraceContext trace_ctx = obs::current_context();
  auto& metrics = EngineMetrics::instance();
  metrics.batch_queries.inc(batch.size());

  // Backend resolution: group the batch by full evidence assignment and
  // route each group to the junction tree when the backend (or the kAuto
  // distinct-query threshold) says one calibration will amortize. Every
  // remaining index stays on the per-query VE path.
  std::vector<std::size_t> ve_indices;
  std::vector<std::vector<std::size_t>> jt_groups;
  std::vector<std::vector<std::size_t>> bp_groups;
  if (options_.backend == Backend::kVariableElimination) {
    ve_indices.resize(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) ve_indices[i] = i;
  } else {
    std::map<TreeKey, std::vector<std::size_t>> by_evidence;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      by_evidence[TreeKey(batch[i].evidence.begin(), batch[i].evidence.end())]
          .push_back(i);
    }
    for (auto& [key, indices] : by_evidence) {
      if (options_.backend == Backend::kLoopyBP ||
          auto_escalates_to_bp(batch[indices.front()].evidence)) {
        bp_groups.push_back(std::move(indices));
        continue;
      }
      bool use_jt = options_.backend == Backend::kJunctionTree;
      if (!use_jt) {
        std::set<VariableId> distinct;
        for (const std::size_t i : indices) distinct.insert(batch[i].query);
        use_jt = distinct.size() >= options_.jt_batch_threshold;
      }
      if (use_jt) {
        jt_groups.push_back(std::move(indices));
      } else {
        ve_indices.insert(ve_indices.end(), indices.begin(), indices.end());
      }
    }
  }

  std::vector<std::optional<prob::Categorical>> results(batch.size());
  std::vector<std::exception_ptr> errors(batch.size());
  // One unit per VE query plus one per JT group; result slots stay fixed
  // per batch index, so scheduling cannot perturb the output.
  const std::function<void(std::size_t)> task = [&](std::size_t u) {
    const obs::ContextScope trace_scope(trace_ctx);
    if (u < ve_indices.size()) {
      const std::size_t i = ve_indices[u];
      try {
        results[i] = query(batch[i].query, batch[i].evidence);
      } catch (...) {
        errors[i] = std::current_exception();
      }
      return;
    }
    if (u < ve_indices.size() + jt_groups.size()) {
      const auto& group = jt_groups[u - ve_indices.size()];
      std::shared_ptr<const JunctionTree> tree;
      try {
        tree = calibrated_tree_for(batch[group.front()].evidence);
      } catch (...) {
        for (const std::size_t i : group) errors[i] = std::current_exception();
        return;
      }
      metrics.jt_queries.inc(group.size());
      for (const std::size_t i : group) {
        try {
          if (batch[i].query >= net_.size())
            throw std::out_of_range("InferenceEngine::query: variable id");
          results[i] = tree->query(batch[i].query);
        } catch (...) {
          errors[i] = std::current_exception();
        }
      }
      return;
    }
    const auto& group = bp_groups[u - ve_indices.size() - jt_groups.size()];
    std::shared_ptr<const LoopyBP> bp;
    try {
      bp = bp_for(batch[group.front()].evidence);
    } catch (...) {
      for (const std::size_t i : group) errors[i] = std::current_exception();
      return;
    }
    metrics.bp_queries.inc(group.size());
    for (const std::size_t i : group) {
      try {
        if (batch[i].query >= net_.size())
          throw std::out_of_range("InferenceEngine::query: variable id");
        results[i] = bp->query(batch[i].query).point;
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
  };
  const std::size_t units =
      ve_indices.size() + jt_groups.size() + bp_groups.size();
  if (pool_) {
    pool_->run(units, task);
  } else {
    for (std::size_t u = 0; u < units; ++u) task(u);
  }
  for (const auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
  std::vector<prob::Categorical> out;
  out.reserve(batch.size());
  for (auto& r : results) out.push_back(std::move(*r));
  return out;
}

std::vector<prob::Categorical> InferenceEngine::sample_batch(
    const std::vector<QuerySpec>& batch, std::size_t samples,
    std::uint64_t seed) const {
  const obs::Span span("bayesnet.engine.sample_batch");
  const obs::TraceContext trace_ctx = obs::current_context();
  EngineMetrics::instance().sampled_queries.inc(batch.size());
  std::vector<std::optional<prob::Categorical>> results(batch.size());
  std::vector<std::exception_ptr> errors(batch.size());
  const std::function<void(std::size_t)> task = [&](std::size_t i) {
    const obs::ContextScope trace_scope(trace_ctx);
    try {
      // Stream (seed, i) is independent of which thread runs the query.
      prob::Rng base(seed);
      prob::Rng rng = base.split(i);
      results[i] = likelihood_weighting(net_, batch[i].query,
                                        batch[i].evidence, samples, rng);
    } catch (...) {
      errors[i] = std::current_exception();
    }
  };
  if (pool_) {
    pool_->run(batch.size(), task);
  } else {
    for (std::size_t i = 0; i < batch.size(); ++i) task(i);
  }
  for (const auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
  std::vector<prob::Categorical> out;
  out.reserve(batch.size());
  for (auto& r : results) out.push_back(std::move(*r));
  return out;
}

bool InferenceEngine::ordering_cached(const Evidence& evidence) const {
  OrderingKey key;
  key.reserve(evidence.size());
  for (const auto& [v, _] : evidence) key.push_back(v);  // map: sorted
  std::lock_guard<std::mutex> lk(cache_mu_);
  return cache_.find(key) != cache_.end();
}

bool InferenceEngine::tree_cached(const Evidence& evidence) const {
  const TreeKey key(evidence.begin(), evidence.end());
  std::lock_guard<std::mutex> lk(cache_mu_);
  return jt_cache_.find(key) != jt_cache_.end();
}

bool InferenceEngine::bp_cached(const Evidence& evidence) const {
  const TreeKey key(evidence.begin(), evidence.end());
  std::lock_guard<std::mutex> lk(cache_mu_);
  return bp_cache_.find(key) != bp_cache_.end();
}

QueryProfile InferenceEngine::explain(VariableId query,
                                      const Evidence& evidence) const {
  using clock = std::chrono::steady_clock;
  const auto since = [](clock::time_point a, clock::time_point b) {
    return std::chrono::duration<double>(b - a).count();
  };
  if (query >= net_.size())
    throw std::out_of_range("InferenceEngine::query: variable id");

  const obs::Span span("bayesnet.engine.explain");
  QueryProfile p;
  p.query = net_.variable(query).name();
  for (const auto& [v, state] : evidence) {
    if (v >= net_.size())
      throw std::out_of_range("InferenceEngine::explain: evidence variable id");
    p.evidence.emplace_back(net_.variable(v).name(),
                            net_.variable(v).state_name(state));
  }
  p.states = net_.variable(query).states();

  const auto t0 = clock::now();
  if (evidence.contains(query)) {
    p.backend = "evidence_delta";
    p.backend_reason =
        "query variable is observed; the posterior is its evidence delta";
    const auto d = prob::Categorical::delta(
        evidence.at(query), net_.variable(query).cardinality());
    p.posterior = d.probs();
    p.total_seconds = since(t0, clock::now());
    return p;
  }

  if (options_.backend == Backend::kLoopyBP || auto_escalates_to_bp(evidence)) {
    p.backend = "loopy_bp";
    p.backend_reason =
        options_.backend == Backend::kLoopyBP
            ? "Backend::kLoopyBP routes every query through flooding belief "
              "propagation with certified bounds"
            : "Backend::kAuto escalated: the exact elimination plan exceeds "
              "Options::max_exact_table_cells (largest table " +
                  std::to_string(exact_plan_max_cells(evidence)) + " cells)";
    p.bp_cache_hit = bp_cached(evidence);
    const auto t_prop0 = clock::now();
    const auto bp = bp_for(evidence);
    const auto t_prop1 = clock::now();
    p.schedule = LoopyBP::schedule();
    p.bp_iterations = bp->iterations();
    p.bp_converged = bp->converged();
    p.bp_damping = options_.bp.damping;
    p.final_residual = bp->final_residual();
    p.bound_width = bp->max_bound_width();
    p.propagation_seconds = bp->build_seconds();
    p.arena_high_water_bytes = bp->arena_high_water_bytes();
    const auto& posterior = bp->query(query);  // throws when P(e) = 0
    const auto t_read = clock::now();
    p.stages.push_back({"propagate", since(t_prop0, t_prop1)});
    p.stages.push_back({"read_marginal", since(t_prop1, t_read)});
    p.posterior = posterior.point.probs();
  } else if (options_.backend == Backend::kJunctionTree) {
    p.backend = "junction_tree";
    p.backend_reason =
        "Backend::kJunctionTree routes every query through the calibrated "
        "clique tree";
    p.jt_cache_hit = tree_cached(evidence);
    const auto t_cal0 = clock::now();
    const auto tree = calibrated_tree_for(evidence);
    const auto t_cal1 = clock::now();
    for (const auto& clique : tree->cliques())
      p.clique_sizes.push_back(clique.size());
    p.max_clique_size = tree->max_clique_size();
    p.calibration_seconds = tree->build_seconds();
    p.arena_high_water_bytes = tree->arena_high_water_bytes();
    const auto posterior = tree->query(query);  // throws when P(e) = 0
    const auto t_read = clock::now();
    p.stages.push_back({"calibrate", since(t_cal0, t_cal1)});
    p.stages.push_back({"read_marginal", since(t_cal1, t_read)});
    p.posterior = posterior.probs();
  } else {
    p.backend = "variable_elimination";
    p.backend_reason =
        options_.backend == Backend::kVariableElimination
            ? "Backend::kVariableElimination runs one elimination per query"
            : "Backend::kAuto keeps single queries on variable elimination "
              "(the junction tree amortizes only across batch groups)";
    p.ordering_cache_hit = ordering_cached(evidence);
    const auto t_plan0 = clock::now();
    const auto ordering = ordering_for(evidence);
    const auto t_plan1 = clock::now();
    p.induced_width = ordering->induced_width;
    p.fill_edges = ordering->fill_edges;
    p.steps = simulate_elimination(net_, evidence, ordering->order, {query});
    const auto t_sim = clock::now();
    const auto posterior = query_ve(query, evidence);  // throws when P(e) = 0
    const auto t_exec = clock::now();
    p.arena_high_water_bytes =
        last_ve_arena_high_water_.load(std::memory_order_relaxed);
    p.stages.push_back({"plan", since(t_plan0, t_plan1)});
    p.stages.push_back({"analyze", since(t_plan1, t_sim)});
    p.stages.push_back({"execute", since(t_sim, t_exec)});
    p.posterior = posterior.probs();
  }
  p.total_seconds = since(t0, clock::now());
  return p;
}

InferenceEngine::CacheStats InferenceEngine::cache_stats() const {
  std::lock_guard<std::mutex> lk(cache_mu_);
  CacheStats s;
  s.hits = cache_hits_;
  s.misses = cache_misses_;
  s.entries = cache_.size();
  return s;
}

InferenceEngine::CacheStats InferenceEngine::jt_cache_stats() const {
  std::lock_guard<std::mutex> lk(cache_mu_);
  CacheStats s;
  s.hits = jt_cache_hits_;
  s.misses = jt_cache_misses_;
  s.entries = jt_cache_.size();
  return s;
}

InferenceEngine::CacheStats InferenceEngine::bp_cache_stats() const {
  std::lock_guard<std::mutex> lk(cache_mu_);
  CacheStats s;
  s.hits = bp_cache_hits_;
  s.misses = bp_cache_misses_;
  s.entries = bp_cache_.size();
  return s;
}

void InferenceEngine::reset_cache_stats() {
  std::lock_guard<std::mutex> lk(cache_mu_);
  cache_hits_ = 0;
  cache_misses_ = 0;
  jt_cache_hits_ = 0;
  jt_cache_misses_ = 0;
  bp_cache_hits_ = 0;
  bp_cache_misses_ = 0;
}

void InferenceEngine::clear_cache() {
  std::lock_guard<std::mutex> lk(cache_mu_);
  cache_.clear();
  cache_hits_ = 0;
  cache_misses_ = 0;
  jt_cache_.clear();
  jt_cache_hits_ = 0;
  jt_cache_misses_ = 0;
  bp_cache_.clear();
  bp_cache_hits_ = 0;
  bp_cache_misses_ = 0;
  plan_cells_.clear();
}

}  // namespace sysuq::bayesnet
