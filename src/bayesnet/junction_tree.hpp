// Junction-tree (clique-tree) exact inference: one calibration answers
// every marginal under one evidence assignment.
//
// Relationship to VariableElimination: same exact-inference contract and
// identical impossible-evidence error semantics, but a different cost
// profile. VE answers one query per elimination run; a JunctionTree pays
// one two-phase message pass (collect + distribute over the clique tree)
// and then reads *all* posterior marginals and P(e) off the calibrated
// beliefs. That is the right trade for the library's dominant workloads
// — fta::diagnose_top_event, evidential networks, perception::BnFusion —
// which issue many queries against the same network and evidence.
//
// Construction pipeline (all reusing bayesnet/ordering):
//  1. moralize + triangulate: `compute_elimination_order` (min-fill by
//     default) over the moral graph with evidence vertices deleted;
//  2. elimination cliques via `elimination_cliques`, pruned to maximal
//     cliques (running-intersection property holds by chordality);
//  3. clique tree: deterministic maximum-weight spanning tree over
//     separator cardinalities (Jensen's theorem gives the RIP);
//  4. evidence absorption: every CPT factor is reduced by the evidence
//     and assigned to the first clique covering its scope;
//  5. calibration: sum-product collect toward the root, then distribute.
//     Messages are normalized as they flow and the log-normalizers are
//     accumulated, so P(e) is available in log space without underflow.
//
// Impossible evidence (P(e) = 0) is detected during collect; the tree
// then reports `log_evidence_probability() == -inf` and every marginal
// accessor throws std::domain_error with `impossible_evidence_message` —
// the same per-query semantics as the other engines.
//
// Thread safety: all accessors are const and safe to call concurrently
// once the constructor returns (marginals are extracted eagerly). The
// tree holds a reference to the network — the network must outlive the
// tree and must not be mutated while it is in use.
#pragma once

#include <cstddef>
#include <vector>

#include "bayesnet/network.hpp"
#include "bayesnet/ordering.hpp"
#include "prob/discrete.hpp"

namespace sysuq::bayesnet {

class JunctionTree {
 public:
  /// Builds the clique tree for `net` and calibrates it under `evidence`.
  /// Throws std::out_of_range for unknown evidence ids; evidence with
  /// probability zero is absorbed silently here and surfaces as
  /// std::domain_error from the marginal accessors.
  explicit JunctionTree(const BayesianNetwork& net, const Evidence& evidence = {},
                        OrderingHeuristic heuristic = OrderingHeuristic::kMinFill);

  [[nodiscard]] const BayesianNetwork& network() const { return net_; }
  [[nodiscard]] const Evidence& evidence() const { return evidence_; }

  /// Posterior marginal P(v | evidence) off the calibrated beliefs; an
  /// observed variable returns its delta. Throws std::domain_error with
  /// `impossible_evidence_message` if P(evidence) = 0.
  [[nodiscard]] prob::Categorical query(VariableId v) const;

  /// All posterior marginals, indexed by VariableId (observed variables
  /// hold their deltas). Throws like `query` on impossible evidence.
  [[nodiscard]] const std::vector<prob::Categorical>& all_marginals() const;

  /// log P(evidence); -infinity when the evidence is impossible.
  [[nodiscard]] double log_evidence_probability() const { return log_evidence_; }

  /// P(evidence); 0 when the evidence is impossible.
  [[nodiscard]] double evidence_probability() const;

  // --- structure, for tests, benches and the obs instruments ---

  /// Maximal cliques of the triangulation, sorted scopes, tree order.
  [[nodiscard]] const std::vector<std::vector<VariableId>>& cliques() const {
    return cliques_;
  }
  [[nodiscard]] std::size_t clique_count() const { return cliques_.size(); }
  /// Variables in the largest clique (treewidth + 1 of the triangulation).
  [[nodiscard]] std::size_t max_clique_size() const { return max_clique_size_; }
  /// Wall seconds the constructor spent calibrating this tree. Measured
  /// directly (not via obs), so `InferenceEngine::explain` can attribute
  /// calibration cost in every build mode.
  [[nodiscard]] double build_seconds() const { return build_seconds_; }
  /// Scratch-arena bytes live at the calibration's peak (captured before
  /// the final reset).
  [[nodiscard]] std::size_t arena_high_water_bytes() const {
    return arena_high_water_;
  }

 private:
  const BayesianNetwork& net_;
  Evidence evidence_;
  std::vector<std::vector<VariableId>> cliques_;
  std::vector<prob::Categorical> marginals_;  // one per variable
  std::size_t max_clique_size_ = 0;
  double log_evidence_ = 0.0;
  bool impossible_ = false;
  double build_seconds_ = 0.0;
  std::size_t arena_high_water_ = 0;

  void calibrate(OrderingHeuristic heuristic);
  [[noreturn]] void throw_impossible() const;
};

}  // namespace sysuq::bayesnet
