#include "bayesnet/ordering.hpp"

#include <algorithm>
#include <limits>
#include <set>
#include <stdexcept>

#include "bayesnet/kernels.hpp"

namespace sysuq::bayesnet {

namespace {

// Fill-in cost of eliminating `v` now: pairs of v's neighbours that are
// not yet adjacent to each other.
std::size_t fill_cost(const std::vector<std::set<VariableId>>& adj,
                      VariableId v) {
  std::size_t fill = 0;
  for (auto a = adj[v].begin(); a != adj[v].end(); ++a) {
    auto b = a;
    for (++b; b != adj[v].end(); ++b) {
      if (!adj[*a].contains(*b)) ++fill;
    }
  }
  return fill;
}

// Moral graph: each CPT family {v} ∪ parents(v) forms a clique. Evidence
// vertices are deleted (their factors are reduced before elimination);
// the rest of each family stays pairwise connected.
std::vector<std::set<VariableId>> moral_graph(const BayesianNetwork& net,
                                              const std::vector<char>& is_evidence) {
  const std::size_t n = net.size();
  std::vector<std::set<VariableId>> adj(n);
  for (VariableId v = 0; v < n; ++v) {
    std::vector<VariableId> family;
    if (!is_evidence[v]) family.push_back(v);
    for (VariableId p : net.parents(v)) {
      if (!is_evidence[p]) family.push_back(p);
    }
    for (std::size_t i = 0; i < family.size(); ++i) {
      for (std::size_t j = i + 1; j < family.size(); ++j) {
        adj[family[i]].insert(family[j]);
        adj[family[j]].insert(family[i]);
      }
    }
  }
  return adj;
}

}  // namespace

EliminationOrdering compute_elimination_order(
    const BayesianNetwork& net, const std::vector<VariableId>& keep,
    const std::vector<VariableId>& evidence_keys, OrderingHeuristic heuristic) {
  net.validate();
  const std::size_t n = net.size();
  std::vector<char> is_evidence(n, 0), is_kept(n, 0);
  for (VariableId v : evidence_keys) {
    if (v >= n) throw std::out_of_range("compute_elimination_order: evidence id");
    is_evidence[v] = 1;
  }
  for (VariableId v : keep) {
    if (v >= n) throw std::out_of_range("compute_elimination_order: keep id");
    is_kept[v] = 1;
  }

  std::vector<std::set<VariableId>> adj = moral_graph(net, is_evidence);

  std::vector<char> pending(n, 0);
  std::size_t remaining = 0;
  for (VariableId v = 0; v < n; ++v) {
    if (!is_kept[v] && !is_evidence[v]) {
      pending[v] = 1;
      ++remaining;
    }
  }

  EliminationOrdering out;
  out.order.reserve(remaining);
  while (remaining > 0) {
    VariableId best = 0;
    std::size_t best_cost = std::numeric_limits<std::size_t>::max();
    for (VariableId v = 0; v < n; ++v) {
      if (!pending[v]) continue;
      const std::size_t cost = heuristic == OrderingHeuristic::kMinDegree
                                   ? adj[v].size()
                                   : fill_cost(adj, v);
      if (cost < best_cost) {  // strict: ties break toward the smallest id
        best_cost = cost;
        best = v;
      }
    }

    out.order.push_back(best);
    out.induced_width = std::max(out.induced_width, adj[best].size());

    // Connect the eliminated vertex's neighbours into a clique (the fill
    // edges), then delete it — the incremental graph update.
    for (auto a = adj[best].begin(); a != adj[best].end(); ++a) {
      auto b = a;
      for (++b; b != adj[best].end(); ++b) {
        if (adj[*a].insert(*b).second) {
          adj[*b].insert(*a);
          ++out.fill_edges;
        }
      }
    }
    for (VariableId nb : adj[best]) adj[nb].erase(best);
    adj[best].clear();
    pending[best] = 0;
    --remaining;
  }
  return out;
}

std::vector<std::vector<VariableId>> elimination_cliques(
    const BayesianNetwork& net, const std::vector<VariableId>& evidence_keys,
    const std::vector<VariableId>& order) {
  net.validate();
  const std::size_t n = net.size();
  std::vector<char> is_evidence(n, 0);
  for (VariableId v : evidence_keys) {
    if (v >= n) throw std::out_of_range("elimination_cliques: evidence id");
    is_evidence[v] = 1;
  }
  std::vector<std::set<VariableId>> adj = moral_graph(net, is_evidence);

  std::vector<std::vector<VariableId>> cliques;
  cliques.reserve(order.size());
  for (VariableId v : order) {
    if (v >= n) throw std::out_of_range("elimination_cliques: order id");
    std::vector<VariableId> clique;
    clique.reserve(adj[v].size() + 1);
    clique.push_back(v);
    clique.insert(clique.end(), adj[v].begin(), adj[v].end());
    std::sort(clique.begin(), clique.end());
    cliques.push_back(std::move(clique));

    // Same incremental update as the ordering pass: fill in the
    // neighbourhood, then delete the vertex.
    for (auto a = adj[v].begin(); a != adj[v].end(); ++a) {
      auto b = a;
      for (++b; b != adj[v].end(); ++b) {
        adj[*a].insert(*b);
        adj[*b].insert(*a);
      }
    }
    for (VariableId nb : adj[v]) adj[nb].erase(v);
    adj[v].clear();
  }
  return cliques;
}

Factor eliminate_with_order(std::vector<Factor> factors,
                            const std::vector<VariableId>& order) {
  // All intermediates live in the per-thread scratch arena; only the
  // final result is materialized as an owning Factor.
  Arena& arena = kernels::thread_scratch();
  arena.reset();
  std::vector<kernels::View> views;
  views.reserve(factors.size());
  for (const Factor& f : factors) views.push_back(kernels::view_of(f));
  Factor result = kernels::eliminate_linear(std::move(views), order, arena);
  arena.reset();
  return result;
}

}  // namespace sysuq::bayesnet
