#include "bayesnet/sensitivity.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "bayesnet/inference.hpp"
#include "core/contracts.hpp"
#include "core/tolerance.hpp"

namespace sysuq::bayesnet {

namespace {

// Returns a copy of `rows` with entry (row, state) moved to `new_value`
// under proportional co-variation of the remaining states.
std::vector<prob::Categorical> covary(const std::vector<prob::Categorical>& rows,
                                      std::size_t row, std::size_t state,
                                      double new_value) {
  const auto& r = rows.at(row);
  const double old_value = r.p(state);
  const double rest_old = 1.0 - old_value;
  std::vector<double> probs(r.size());
  for (std::size_t s = 0; s < r.size(); ++s) {
    if (s == state) {
      probs[s] = new_value;
    } else if (rest_old > tolerance::kTiny) {
      probs[s] = r.p(s) * (1.0 - new_value) / rest_old;
    } else {
      // Degenerate row (entry was 1): spread uniformly.
      probs[s] = (1.0 - new_value) / static_cast<double>(r.size() - 1);
    }
  }
  auto out = rows;
  out[row] = prob::Categorical::normalized(std::move(probs));
  return out;
}

double query_prob(const BayesianNetwork& net, VariableId query,
                  std::size_t qstate, const Evidence& evidence) {
  VariableElimination ve(net);
  return ve.query(query, evidence).p(qstate);
}

}  // namespace

double query_sensitivity(const BayesianNetwork& net, VariableId child,
                         std::size_t row, std::size_t state, VariableId query,
                         std::size_t qstate, const Evidence& evidence,
                         double delta) {
  SYSUQ_EXPECT(delta > 0.0, "query_sensitivity: delta");
  const auto& rows = net.cpt_rows(child);
  if (row >= rows.size()) throw std::out_of_range("query_sensitivity: row");
  if (state >= rows[row].size())
    throw std::out_of_range("query_sensitivity: state");
  const double theta = rows[row].p(state);

  // Central difference where possible, one-sided at the boundary.
  const double lo = std::max(0.0, theta - delta);
  const double hi = std::min(1.0, theta + delta);
  if (!(hi > lo)) return 0.0;

  auto net_lo = net;
  net_lo.update_cpt_rows(child, covary(rows, row, state, lo));
  auto net_hi = net;
  net_hi.update_cpt_rows(child, covary(rows, row, state, hi));
  const double p_lo = query_prob(net_lo, query, qstate, evidence);
  const double p_hi = query_prob(net_hi, query, qstate, evidence);
  return (p_hi - p_lo) / (hi - lo);
}

std::vector<ParameterSensitivity> rank_parameters(const BayesianNetwork& net,
                                                  VariableId query,
                                                  std::size_t qstate,
                                                  const Evidence& evidence,
                                                  double delta) {
  net.validate();
  std::vector<ParameterSensitivity> out;
  for (VariableId child = 0; child < net.size(); ++child) {
    const auto& rows = net.cpt_rows(child);
    for (std::size_t row = 0; row < rows.size(); ++row) {
      for (std::size_t state = 0; state < rows[row].size(); ++state) {
        ParameterSensitivity ps{};
        ps.child = child;
        ps.row = row;
        ps.state = state;
        ps.value = rows[row].p(state);
        ps.derivative = query_sensitivity(net, child, row, state, query, qstate,
                                          evidence, delta);
        out.push_back(ps);
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const ParameterSensitivity& a, const ParameterSensitivity& b) {
              return std::fabs(a.derivative) > std::fabs(b.derivative);
            });
  return out;
}

}  // namespace sysuq::bayesnet
