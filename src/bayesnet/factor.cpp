#include "bayesnet/factor.hpp"

#include <algorithm>
#include <stdexcept>

#include "bayesnet/kernels.hpp"
#include "core/contracts.hpp"

namespace sysuq::bayesnet {

Factor::Factor(std::vector<VariableId> scope, std::vector<std::size_t> cards,
               std::vector<double> values)
    : scope_(std::move(scope)), cards_(std::move(cards)), values_(std::move(values)) {
  SYSUQ_EXPECT(scope_.size() == cards_.size(),
               "Factor: scope/cards size mismatch");
  for (std::size_t i = 1; i < scope_.size(); ++i) {
    SYSUQ_EXPECT(scope_[i - 1] < scope_[i],
                 "Factor: scope must be strictly increasing");
  }
  const std::size_t expect = kernels::checked_table_size(
      cards_.data(), cards_.size(), "Factor: table size overflows size_t");
  SYSUQ_EXPECT(values_.size() == expect, "Factor: value count mismatch");
  SYSUQ_EXPECT(contracts::is_finite_nonneg(values_),
               "Factor: values must be finite and >= 0");
}

Factor Factor::unit() { return Factor({}, {}, {1.0}); }

bool Factor::contains(VariableId v) const {
  return std::binary_search(scope_.begin(), scope_.end(), v);
}

std::size_t Factor::flat_index(const std::vector<std::size_t>& states) const {
  if (states.size() != scope_.size())
    throw std::invalid_argument("Factor: assignment size mismatch");
  std::size_t idx = 0;
  for (std::size_t i = 0; i < scope_.size(); ++i) {
    if (states[i] >= cards_[i])
      throw std::out_of_range("Factor: state out of range");
    idx = idx * cards_[i] + states[i];
  }
  return idx;
}

double Factor::at(const std::vector<std::size_t>& states) const {
  return values_[flat_index(states)];
}

Factor Factor::product(const Factor& other) const {
  // Merge scopes (both sorted). Kept here rather than delegated to
  // kernels::merge_scopes so the documented std::invalid_argument on a
  // cardinality mismatch holds even with contracts compiled out.
  std::vector<VariableId> merged;
  std::vector<std::size_t> merged_cards;
  merged.reserve(scope_.size() + other.scope_.size());
  merged_cards.reserve(merged.capacity());
  {
    std::size_t i = 0, j = 0;
    while (i < scope_.size() || j < other.scope_.size()) {
      if (j == other.scope_.size() ||
          (i < scope_.size() && scope_[i] < other.scope_[j])) {
        merged.push_back(scope_[i]);
        merged_cards.push_back(cards_[i]);
        ++i;
      } else if (i == scope_.size() || other.scope_[j] < scope_[i]) {
        merged.push_back(other.scope_[j]);
        merged_cards.push_back(other.cards_[j]);
        ++j;
      } else {  // shared variable
        if (cards_[i] != other.cards_[j])
          throw std::invalid_argument("Factor::product: cardinality mismatch");
        merged.push_back(scope_[i]);
        merged_cards.push_back(cards_[i]);
        ++i;
        ++j;
      }
    }
  }

  const std::size_t total_size = kernels::checked_table_size(
      merged_cards.data(), merged_cards.size(),
      "Factor::product: table size overflows size_t");
  std::vector<double> out(total_size);
  kernels::product_into(kernels::view_of(*this), kernels::view_of(other),
                        merged.data(), merged_cards.data(), merged.size(),
                        out.data());
  return Factor(std::move(merged), std::move(merged_cards), std::move(out));
}

Factor Factor::marginalize(VariableId v) const {
  const auto it = std::lower_bound(scope_.begin(), scope_.end(), v);
  if (it == scope_.end() || *it != v)
    throw std::invalid_argument("Factor::marginalize: variable not in scope");
  const auto pos = static_cast<std::size_t>(it - scope_.begin());

  std::vector<VariableId> new_scope;
  std::vector<std::size_t> new_cards;
  for (std::size_t i = 0; i < scope_.size(); ++i) {
    if (i == pos) continue;
    new_scope.push_back(scope_[i]);
    new_cards.push_back(cards_[i]);
  }
  std::vector<double> out(values_.size() / cards_[pos]);
  kernels::marginalize_into(kernels::view_of(*this), pos, out.data());
  return Factor(std::move(new_scope), std::move(new_cards), std::move(out));
}

Factor Factor::reduce(VariableId v, std::size_t state) const {
  const auto it = std::lower_bound(scope_.begin(), scope_.end(), v);
  if (it == scope_.end() || *it != v)
    throw std::invalid_argument("Factor::reduce: variable not in scope");
  const auto pos = static_cast<std::size_t>(it - scope_.begin());
  if (state >= cards_[pos])
    throw std::out_of_range("Factor::reduce: state out of range");

  std::vector<VariableId> new_scope;
  std::vector<std::size_t> new_cards;
  for (std::size_t i = 0; i < scope_.size(); ++i) {
    if (i == pos) continue;
    new_scope.push_back(scope_[i]);
    new_cards.push_back(cards_[i]);
  }
  std::vector<double> out(values_.size() / cards_[pos]);
  kernels::reduce_into(kernels::view_of(*this), pos, state, out.data());
  return Factor(std::move(new_scope), std::move(new_cards), std::move(out));
}

Factor Factor::normalized() const {
  const double sum = total();
  if (!(sum > 0.0))
    throw std::domain_error("Factor::normalized: zero total (impossible evidence)");
  std::vector<double> out = values_;
  for (double& v : out) v /= sum;
  return Factor(scope_, cards_, std::move(out));
}

double Factor::total() const {
  return kernels::total(values_.data(), values_.size());
}

}  // namespace sysuq::bayesnet
