#include "bayesnet/factor.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "core/contracts.hpp"

namespace sysuq::bayesnet {

Factor::Factor(std::vector<VariableId> scope, std::vector<std::size_t> cards,
               std::vector<double> values)
    : scope_(std::move(scope)), cards_(std::move(cards)), values_(std::move(values)) {
  SYSUQ_EXPECT(scope_.size() == cards_.size(),
               "Factor: scope/cards size mismatch");
  for (std::size_t i = 1; i < scope_.size(); ++i) {
    SYSUQ_EXPECT(scope_[i - 1] < scope_[i],
                 "Factor: scope must be strictly increasing");
  }
  std::size_t expect = 1;
  for (std::size_t c : cards_) {
    SYSUQ_EXPECT(c != 0, "Factor: zero cardinality");
    expect *= c;
  }
  SYSUQ_EXPECT(values_.size() == expect, "Factor: value count mismatch");
  SYSUQ_EXPECT(contracts::is_finite_nonneg(values_),
               "Factor: values must be finite and >= 0");
}

Factor Factor::unit() { return Factor({}, {}, {1.0}); }

bool Factor::contains(VariableId v) const {
  return std::binary_search(scope_.begin(), scope_.end(), v);
}

std::size_t Factor::flat_index(const std::vector<std::size_t>& states) const {
  if (states.size() != scope_.size())
    throw std::invalid_argument("Factor: assignment size mismatch");
  std::size_t idx = 0;
  for (std::size_t i = 0; i < scope_.size(); ++i) {
    if (states[i] >= cards_[i])
      throw std::out_of_range("Factor: state out of range");
    idx = idx * cards_[i] + states[i];
  }
  return idx;
}

double Factor::at(const std::vector<std::size_t>& states) const {
  return values_[flat_index(states)];
}

Factor Factor::product(const Factor& other) const {
  // Merge scopes (both sorted).
  std::vector<VariableId> merged;
  std::vector<std::size_t> merged_cards;
  {
    std::size_t i = 0, j = 0;
    while (i < scope_.size() || j < other.scope_.size()) {
      if (j == other.scope_.size() ||
          (i < scope_.size() && scope_[i] < other.scope_[j])) {
        merged.push_back(scope_[i]);
        merged_cards.push_back(cards_[i]);
        ++i;
      } else if (i == scope_.size() || other.scope_[j] < scope_[i]) {
        merged.push_back(other.scope_[j]);
        merged_cards.push_back(other.cards_[j]);
        ++j;
      } else {  // shared variable
        if (cards_[i] != other.cards_[j])
          throw std::invalid_argument("Factor::product: cardinality mismatch");
        merged.push_back(scope_[i]);
        merged_cards.push_back(cards_[i]);
        ++i;
        ++j;
      }
    }
  }

  // Map merged positions back into each operand's scope.
  std::vector<std::size_t> map_a(merged.size(), SIZE_MAX),
      map_b(merged.size(), SIZE_MAX);
  for (std::size_t k = 0; k < merged.size(); ++k) {
    const auto ia = std::lower_bound(scope_.begin(), scope_.end(), merged[k]);
    if (ia != scope_.end() && *ia == merged[k])
      map_a[k] = static_cast<std::size_t>(ia - scope_.begin());
    const auto ib =
        std::lower_bound(other.scope_.begin(), other.scope_.end(), merged[k]);
    if (ib != other.scope_.end() && *ib == merged[k])
      map_b[k] = static_cast<std::size_t>(ib - other.scope_.begin());
  }

  std::size_t total_size = 1;
  for (std::size_t c : merged_cards) total_size *= c;

  std::vector<double> out(total_size);
  std::vector<std::size_t> assign(merged.size(), 0);
  std::vector<std::size_t> sa(scope_.size(), 0), sb(other.scope_.size(), 0);
  for (std::size_t flat = 0; flat < total_size; ++flat) {
    for (std::size_t k = 0; k < merged.size(); ++k) {
      if (map_a[k] != SIZE_MAX) sa[map_a[k]] = assign[k];
      if (map_b[k] != SIZE_MAX) sb[map_b[k]] = assign[k];
    }
    out[flat] = at(sa) * other.at(sb);
    // Increment mixed-radix counter (last variable fastest).
    for (std::size_t k = merged.size(); k-- > 0;) {
      if (++assign[k] < merged_cards[k]) break;
      assign[k] = 0;
    }
  }
  return Factor(std::move(merged), std::move(merged_cards), std::move(out));
}

Factor Factor::marginalize(VariableId v) const {
  const auto it = std::lower_bound(scope_.begin(), scope_.end(), v);
  if (it == scope_.end() || *it != v)
    throw std::invalid_argument("Factor::marginalize: variable not in scope");
  const auto pos = static_cast<std::size_t>(it - scope_.begin());

  std::vector<VariableId> new_scope;
  std::vector<std::size_t> new_cards;
  for (std::size_t i = 0; i < scope_.size(); ++i) {
    if (i == pos) continue;
    new_scope.push_back(scope_[i]);
    new_cards.push_back(cards_[i]);
  }
  std::size_t new_size = 1;
  for (std::size_t c : new_cards) new_size *= c;
  std::vector<double> out(new_size, 0.0);

  std::vector<std::size_t> assign(scope_.size(), 0);
  for (std::size_t flat = 0; flat < values_.size(); ++flat) {
    std::size_t nidx = 0;
    for (std::size_t i = 0; i < scope_.size(); ++i) {
      if (i == pos) continue;
      nidx = nidx * cards_[i] + assign[i];
    }
    out[nidx] += values_[flat];
    for (std::size_t k = scope_.size(); k-- > 0;) {
      if (++assign[k] < cards_[k]) break;
      assign[k] = 0;
    }
  }
  return Factor(std::move(new_scope), std::move(new_cards), std::move(out));
}

Factor Factor::reduce(VariableId v, std::size_t state) const {
  const auto it = std::lower_bound(scope_.begin(), scope_.end(), v);
  if (it == scope_.end() || *it != v)
    throw std::invalid_argument("Factor::reduce: variable not in scope");
  const auto pos = static_cast<std::size_t>(it - scope_.begin());
  if (state >= cards_[pos])
    throw std::out_of_range("Factor::reduce: state out of range");

  std::vector<VariableId> new_scope;
  std::vector<std::size_t> new_cards;
  for (std::size_t i = 0; i < scope_.size(); ++i) {
    if (i == pos) continue;
    new_scope.push_back(scope_[i]);
    new_cards.push_back(cards_[i]);
  }
  std::size_t new_size = 1;
  for (std::size_t c : new_cards) new_size *= c;
  std::vector<double> out(new_size, 0.0);

  std::vector<std::size_t> assign(scope_.size(), 0);
  for (std::size_t flat = 0; flat < values_.size(); ++flat) {
    if (assign[pos] == state) {
      std::size_t nidx = 0;
      for (std::size_t i = 0; i < scope_.size(); ++i) {
        if (i == pos) continue;
        nidx = nidx * cards_[i] + assign[i];
      }
      out[nidx] = values_[flat];
    }
    for (std::size_t k = scope_.size(); k-- > 0;) {
      if (++assign[k] < cards_[k]) break;
      assign[k] = 0;
    }
  }
  return Factor(std::move(new_scope), std::move(new_cards), std::move(out));
}

Factor Factor::normalized() const {
  const double sum = total();
  if (!(sum > 0.0))
    throw std::domain_error("Factor::normalized: zero total (impossible evidence)");
  std::vector<double> out = values_;
  for (double& v : out) v /= sum;
  return Factor(scope_, cards_, std::move(out));
}

double Factor::total() const {
  return std::accumulate(values_.begin(), values_.end(), 0.0);
}

}  // namespace sysuq::bayesnet
