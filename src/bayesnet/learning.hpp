// Bayesian CPT learning from observed joint states.
//
// The engine behind the paper's uncertainty-removal-during-use loop
// (Sec. IV "field observation", Sec. V "the epistemic uncertainty can be
// reduced by further observation and refinement"): each CPT row carries a
// Dirichlet posterior whose credible-interval width is the row's residual
// epistemic uncertainty.
#pragma once

#include <cstddef>
#include <vector>

#include "bayesnet/network.hpp"
#include "prob/distribution.hpp"

namespace sysuq::bayesnet {

/// Maintains Dirichlet posteriors over every CPT row of one node and can
/// write the posterior-mean CPT back into the network.
class CptLearner {
 public:
  /// Learner for `child`'s CPT in `net` with a symmetric Dirichlet prior
  /// of `prior_alpha` pseudo-counts per child state.
  CptLearner(const BayesianNetwork& net, VariableId child,
             double prior_alpha = 1.0);

  /// Records a fully observed network state (one field observation).
  void observe(const std::vector<std::size_t>& full_state);

  /// Total observations recorded.
  [[nodiscard]] std::size_t observation_count() const { return observations_; }

  /// Posterior over the CPT row for a given parent configuration index
  /// (last parent varying fastest, matching BayesianNetwork layout).
  [[nodiscard]] const prob::Dirichlet& row_posterior(std::size_t row) const;

  /// Number of CPT rows tracked.
  [[nodiscard]] std::size_t row_count() const { return posteriors_.size(); }

  /// Posterior-mean CPT rows.
  [[nodiscard]] std::vector<prob::Categorical> posterior_mean_rows() const;

  /// Mean 95%-credible width across all rows, weighted by row visit
  /// counts (unvisited rows keep the prior width): the node's scalar
  /// epistemic uncertainty.
  [[nodiscard]] double epistemic_width() const;

  /// Writes the posterior-mean CPT into the network (uncertainty removal:
  /// the codified model is refined from field data).
  void commit(BayesianNetwork& net) const;

  /// The node this learner tracks.
  [[nodiscard]] VariableId child() const { return child_; }

 private:
  VariableId child_;
  std::vector<VariableId> parents_;
  std::vector<std::size_t> parent_cards_;
  std::size_t child_card_;
  std::vector<prob::Dirichlet> posteriors_;
  std::size_t observations_ = 0;

  [[nodiscard]] std::size_t row_of(const std::vector<std::size_t>& full_state) const;
};

}  // namespace sysuq::bayesnet
