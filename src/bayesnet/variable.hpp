// Discrete random variables for the Bayesian-network layer.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace sysuq::bayesnet {

/// Index of a variable within a network (dense, 0-based).
using VariableId = std::size_t;

/// A named discrete variable with named states.
///
/// In the paper's Fig. 4 example: `ground_truth` with states
/// {car, pedestrian, unknown}, and `perception` with states
/// {car, pedestrian, car/pedestrian, none}.
class Variable {
 public:
  /// Constructs a variable; requires a non-empty name and >= 2 states
  /// with unique non-empty labels.
  Variable(std::string name, std::vector<std::string> states);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t cardinality() const { return states_.size(); }
  [[nodiscard]] const std::vector<std::string>& states() const { return states_; }
  [[nodiscard]] const std::string& state_name(std::size_t i) const;

  /// Index of a state by label; throws if absent.
  [[nodiscard]] std::size_t state_index(const std::string& label) const;

  /// True if the label names a state of this variable.
  // sysuq-lint-allow(contract-coverage): total boolean query over any label
  [[nodiscard]] bool has_state(const std::string& label) const;

 private:
  std::string name_;
  std::vector<std::string> states_;
};

/// A (variable, state) assignment used for evidence and queries.
struct Assignment {
  VariableId variable;
  std::size_t state;
};

}  // namespace sysuq::bayesnet
