// One-way sensitivity analysis for Bayesian networks: how strongly a
// posterior query depends on each CPT parameter.
//
// This operationalizes the paper's epistemic-uncertainty triage: CPT
// entries the analysis is most sensitive to are where elicitation
// imprecision hurts most, and where field observation (uncertainty
// removal) should be spent first.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "bayesnet/network.hpp"

namespace sysuq::bayesnet {

/// Sensitivity of one query to one CPT entry.
struct ParameterSensitivity {
  VariableId child;       ///< node whose CPT holds the parameter
  std::size_t row;        ///< parent-configuration index
  std::size_t state;      ///< child state of the entry
  double value;           ///< current parameter value
  double derivative;      ///< d query / d parameter (proportional co-variation)
};

/// Finite-difference derivative of P(query = qstate | evidence) with
/// respect to the CPT entry (child, row, state), using proportional
/// co-variation: the perturbed entry's complement is redistributed over
/// the remaining states proportionally to their current values.
[[nodiscard]] double query_sensitivity(const BayesianNetwork& net,
                                       VariableId child, std::size_t row,
                                       std::size_t state, VariableId query,
                                       std::size_t qstate,
                                       const Evidence& evidence = {},
                                       double delta = 1e-5);

/// All CPT parameters of the network ranked by |derivative| (descending)
/// for the given query.
[[nodiscard]] std::vector<ParameterSensitivity> rank_parameters(
    const BayesianNetwork& net, VariableId query, std::size_t qstate,
    const Evidence& evidence = {}, double delta = 1e-5);

}  // namespace sysuq::bayesnet
