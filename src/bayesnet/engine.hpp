// The production inference engine: batched, multithreaded posterior
// queries over one Bayesian network, with two exact backends behind one
// contract — per-query variable elimination and calibrated junction
// trees — plus elimination orderings computed once per evidence-keys
// signature and cached.
//
// Relationship to VariableElimination: same exact-inference contract and
// identical error semantics, plus
//  * CPT factors are materialized once at construction instead of per
//    query;
//  * elimination orderings (min-fill by default) are cached by the set of
//    evidence *keys* — repeated queries that observe the same variables
//    (with any values and any query variable) reuse the plan;
//  * calibrated junction trees are cached by the full evidence
//    *assignment* (keys and values): an all-marginals workload pays one
//    message pass instead of one elimination per query. The `Backend`
//    option selects the strategy; `kAuto` (default) keeps single queries
//    on VE and switches a batch group to the junction tree once it has
//    `jt_batch_threshold` distinct query variables under one evidence
//    assignment;
//  * `query_batch` fans a vector of (query, evidence) pairs across a
//    fixed thread pool; results are deterministic and independent of the
//    thread count because every query's slot and arithmetic are fixed up
//    front;
//  * `sample_batch` runs likelihood weighting with a per-query RNG stream
//    derived from (seed, query index), so a fixed seed gives byte-identical
//    posteriors regardless of scheduling.
//
// Thread safety: all query methods are const and safe to call from
// multiple threads concurrently; the ordering and junction-tree caches
// are internally locked. The engine holds a reference to the network —
// the network must outlive the engine and must not be mutated while
// queries run.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include <atomic>

#include "bayesnet/junction_tree.hpp"
#include "bayesnet/kernels.hpp"
#include "bayesnet/loopy_bp.hpp"
#include "bayesnet/network.hpp"
#include "bayesnet/ordering.hpp"
#include "bayesnet/profile.hpp"
#include "prob/discrete.hpp"
#include "prob/information.hpp"

namespace sysuq::bayesnet {

/// One (query, evidence) pair of a batch.
struct QuerySpec {
  VariableId query = 0;
  Evidence evidence;
};

/// Which backend answers engine queries.
enum class Backend {
  kVariableElimination,  ///< one elimination run per query (the PR-1 path)
  kJunctionTree,         ///< every query reads a calibrated clique tree
  kAuto,  ///< VE per query; JT for batch groups with many distinct queries;
          ///< escalates to loopy BP when the exact plan is infeasible
  kLoopyBP,  ///< approximate loopy belief propagation with certified bounds
};

class InferenceEngine {
 public:
  struct Options {
    /// Worker threads for the batch APIs. 0 = hardware concurrency.
    std::size_t threads = 0;
    OrderingHeuristic heuristic = OrderingHeuristic::kMinFill;
    Backend backend = Backend::kAuto;
    /// Under kAuto, a batch group switches to the junction tree once it
    /// holds at least this many *distinct* query variables under one
    /// evidence assignment (one calibration then amortizes across them).
    std::size_t jt_batch_threshold = 8;
    /// Under kAuto, the feasibility ceiling for exact inference: when
    /// the cached elimination plan's largest intermediate table would
    /// exceed this many cells (simulate_elimination's estimate, also a
    /// proxy for the junction tree's largest clique), the query
    /// escalates to loopy BP instead of materializing it — or throws a
    /// ContractViolation when `enable_bp` is false. The default is 2^24
    /// cells (128 MiB of doubles per table).
    std::size_t max_exact_table_cells = std::size_t{1} << 24;
    /// Permits the kAuto escalation to loopy BP. When false, a query
    /// whose exact plan exceeds `max_exact_table_cells` fails fast with
    /// a ContractViolation instead of silently approximating.
    bool enable_bp = true;
    /// Loopy-BP options, used by Backend::kLoopyBP and kAuto escalations.
    LoopyBP::Options bp = {};
  };

  /// A point-in-time view of this engine's ordering-cache counters.
  /// The process-wide aggregates live on the obs registry
  /// (`bayesnet.engine.ordering_cache.*`); this struct is the
  /// per-engine window over the same events.
  struct CacheStats {
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t entries = 0;
    [[nodiscard]] double hit_rate() const {
      const std::size_t lookups = hits + misses;
      if (lookups == 0) return 0.0;
      return static_cast<double>(hits) / static_cast<double>(lookups);
    }
  };

  explicit InferenceEngine(const BayesianNetwork& net);
  InferenceEngine(const BayesianNetwork& net, Options options);
  ~InferenceEngine();

  InferenceEngine(const InferenceEngine&) = delete;
  InferenceEngine& operator=(const InferenceEngine&) = delete;

  [[nodiscard]] const BayesianNetwork& network() const { return net_; }
  [[nodiscard]] std::size_t threads() const { return threads_; }

  /// Exact posterior P(query | evidence). Throws std::domain_error with
  /// `impossible_evidence_message` if P(evidence) = 0.
  [[nodiscard]] prob::Categorical query(VariableId query,
                                        const Evidence& evidence = {}) const;

  /// EXPLAIN ANALYZE for one query: answers it on the same code path as
  /// `query` and returns the full cost attribution — backend chosen and
  /// why, the elimination plan (per-step factor widths and table sizes)
  /// or the calibrated tree's clique structure, ordering/JT cache hit
  /// flags, the scratch-arena high-water mark, and wall seconds per
  /// stage. Throws exactly like `query` (unknown id, impossible
  /// evidence). Structure fields are deterministic; see
  /// `QueryProfile::zero_costs` for byte-reproducible rendering.
  [[nodiscard]] QueryProfile explain(VariableId query,
                                     const Evidence& evidence = {}) const;

  /// Exact posteriors of *every* variable given `evidence`, indexed by
  /// VariableId (observed variables hold their deltas). Under the
  /// kJunctionTree and kAuto backends this is one calibrated message
  /// pass; under kVariableElimination it loops `query`. Throws like
  /// `query` on impossible evidence.
  [[nodiscard]] std::vector<prob::Categorical> all_marginals(
      const Evidence& evidence = {}) const;

  /// Bounded posterior of one query via loopy BP: the point estimate
  /// plus a certified interval containing the true P(query | evidence).
  /// Available under every backend (the BP run is cached by evidence
  /// assignment); throws like `query` on impossible evidence.
  [[nodiscard]] BoundedPosterior query_bounded(
      VariableId query, const Evidence& evidence = {}) const;

  /// Bounded posteriors of every variable via loopy BP, indexed by
  /// VariableId (observed variables hold zero-width deltas).
  [[nodiscard]] std::vector<BoundedPosterior> all_marginals_bounded(
      const Evidence& evidence = {}) const;

  /// Probability of the evidence, P(e).
  [[nodiscard]] double evidence_probability(const Evidence& evidence) const;

  /// log P(e); -infinity when the evidence is impossible (no throw).
  [[nodiscard]] double log_evidence_probability(const Evidence& evidence) const;

  /// Exact joint of two distinct unobserved variables given evidence.
  [[nodiscard]] prob::JointTable joint(VariableId a, VariableId b,
                                       const Evidence& evidence = {}) const;

  /// Exact posteriors for a batch of queries, fanned across the thread
  /// pool. result[i] corresponds to batch[i]; results are byte-identical
  /// for any thread count. The first failing query's exception (e.g.
  /// impossible evidence) is rethrown after the batch finishes.
  [[nodiscard]] std::vector<prob::Categorical> query_batch(
      const std::vector<QuerySpec>& batch) const;

  /// Approximate posteriors by likelihood weighting, `samples` draws per
  /// query. Query i draws from an RNG stream derived from (seed, i), so a
  /// fixed seed yields byte-identical results for any thread count.
  [[nodiscard]] std::vector<prob::Categorical> sample_batch(
      const std::vector<QuerySpec>& batch, std::size_t samples,
      std::uint64_t seed) const;

  /// Ordering-cache statistics since construction / the last clear /
  /// the last reset_cache_stats().
  [[nodiscard]] CacheStats cache_stats() const;

  /// Calibrated-tree cache statistics (same windowing rules). Unlike the
  /// ordering cache, entries here are keyed by the *full* evidence
  /// assignment — two evidence maps sharing keys but differing in any
  /// value never share a calibrated tree.
  [[nodiscard]] CacheStats jt_cache_stats() const;

  /// Loopy-BP run cache statistics (same windowing rules; keyed by the
  /// full evidence assignment like the junction-tree cache).
  [[nodiscard]] CacheStats bp_cache_stats() const;

  /// Zeroes the hit/miss counters (ordering and junction-tree caches)
  /// without dropping cached plans or calibrated trees, so long-running
  /// batch loops can window their stats per batch. The process-wide obs
  /// counters are unaffected (they aggregate forever).
  void reset_cache_stats();

  void clear_cache();

 private:
  class Pool;

  // Key: sorted evidence keys. The cached ordering eliminates *every*
  // unobserved variable; queries skip their kept variables at execution
  // time, so one plan serves all queries sharing an evidence signature.
  using OrderingKey = std::vector<VariableId>;
  // Key: the full evidence assignment (sorted key/value pairs). Exact —
  // calibrated beliefs depend on evidence values, so signatures that a
  // lossy hash would conflate stay distinct by construction.
  using TreeKey = std::vector<std::pair<VariableId, std::size_t>>;

  const BayesianNetwork& net_;              // sysuq-thread-confined(init)
  Options options_;                         // sysuq-thread-confined(init)
  std::size_t threads_;                     // sysuq-thread-confined(init)
  // One per variable, built once.  sysuq-thread-confined(init)
  std::vector<Factor> cpt_factors_;
  std::unique_ptr<Pool> pool_;              // sysuq-thread-confined(init)

  mutable std::mutex cache_mu_;
  // sysuq-guarded-by(cache_mu_)
  mutable std::map<OrderingKey, std::shared_ptr<const EliminationOrdering>> cache_;
  mutable std::size_t cache_hits_ = 0;      // sysuq-guarded-by(cache_mu_)
  mutable std::size_t cache_misses_ = 0;    // sysuq-guarded-by(cache_mu_)
  // sysuq-guarded-by(cache_mu_)
  mutable std::map<TreeKey, std::shared_ptr<const JunctionTree>> jt_cache_;
  mutable std::size_t jt_cache_hits_ = 0;   // sysuq-guarded-by(cache_mu_)
  mutable std::size_t jt_cache_misses_ = 0; // sysuq-guarded-by(cache_mu_)
  // sysuq-guarded-by(cache_mu_)
  mutable std::map<TreeKey, std::shared_ptr<const LoopyBP>> bp_cache_;
  mutable std::size_t bp_cache_hits_ = 0;   // sysuq-guarded-by(cache_mu_)
  mutable std::size_t bp_cache_misses_ = 0; // sysuq-guarded-by(cache_mu_)
  // kAuto feasibility guard memo: largest simulated elimination table
  // (cells) per evidence-keys signature — one symbolic replay per
  // signature, not per query.  sysuq-guarded-by(cache_mu_)
  mutable std::map<OrderingKey, std::size_t> plan_cells_;
  // Arena bytes live at the peak of the most recent VE elimination on
  // any thread (captured before the final arena reset). Relaxed: a
  // diagnostic figure for explain(), not synchronization.
  mutable std::atomic<std::size_t> last_ve_arena_high_water_{0};

  // Takes cache_mu_ itself; calling it with the lock held self-deadlocks.
  // sysuq-excludes(cache_mu_)
  [[nodiscard]] std::shared_ptr<const EliminationOrdering> ordering_for(
      const Evidence& evidence) const;
  /// Scaled elimination over views of the cached CPT factors (no
  /// per-query deep copies); evidence reductions and all intermediates
  /// live in the per-thread scratch arena. The log normalizer lets the
  /// impossible-evidence checks distinguish genuine zero mass from
  /// deep-chain underflow.
  [[nodiscard]] kernels::ScaledFactor eliminate_all_but(
      const std::vector<VariableId>& keep, const Evidence& evidence) const;
  /// The calibrated tree for `evidence`, built on a miss and memoized.
  // sysuq-excludes(cache_mu_)
  [[nodiscard]] std::shared_ptr<const JunctionTree> calibrated_tree_for(
      const Evidence& evidence) const;
  /// The loopy-BP run for `evidence`, built on a miss and memoized. A
  /// run that fails to converge under the configured damping is retried
  /// once at damping 0.5 (deterministic), keeping whichever converged.
  // sysuq-excludes(cache_mu_)
  [[nodiscard]] std::shared_ptr<const LoopyBP> bp_for(
      const Evidence& evidence) const;
  /// kAuto feasibility guard: largest intermediate table (cells) of the
  /// cached elimination plan under `evidence` (memoized per signature).
  // sysuq-excludes(cache_mu_)
  [[nodiscard]] std::size_t exact_plan_max_cells(const Evidence& evidence) const;
  /// True when kAuto must leave the exact backends for `evidence`;
  /// throws ContractViolation when escalation is needed but disabled.
  [[nodiscard]] bool auto_escalates_to_bp(const Evidence& evidence) const;
  [[nodiscard]] prob::Categorical query_ve(VariableId query,
                                           const Evidence& evidence) const;
  /// Cache peeks for explain()'s hit attribution (no stats recorded).
  [[nodiscard]] bool ordering_cached(const Evidence& evidence) const;
  [[nodiscard]] bool tree_cached(const Evidence& evidence) const;
  [[nodiscard]] bool bp_cached(const Evidence& evidence) const;
};

}  // namespace sysuq::bayesnet
