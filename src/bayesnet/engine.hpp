// The production inference engine: batched, multithreaded posterior
// queries over one Bayesian network, with elimination orderings computed
// once per evidence-keys signature and cached.
//
// Relationship to VariableElimination: same exact-inference contract and
// identical error semantics, plus
//  * CPT factors are materialized once at construction instead of per
//    query;
//  * elimination orderings (min-fill by default) are cached by the set of
//    evidence *keys* — repeated queries that observe the same variables
//    (with any values and any query variable) reuse the plan;
//  * `query_batch` fans a vector of (query, evidence) pairs across a
//    fixed thread pool; results are deterministic and independent of the
//    thread count because every query's slot and arithmetic are fixed up
//    front;
//  * `sample_batch` runs likelihood weighting with a per-query RNG stream
//    derived from (seed, query index), so a fixed seed gives byte-identical
//    posteriors regardless of scheduling.
//
// Thread safety: all query methods are const and safe to call from
// multiple threads concurrently; the ordering cache is internally locked.
// The engine holds a reference to the network — the network must outlive
// the engine and must not be mutated while queries run.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "bayesnet/network.hpp"
#include "bayesnet/ordering.hpp"
#include "prob/discrete.hpp"
#include "prob/information.hpp"

namespace sysuq::bayesnet {

/// One (query, evidence) pair of a batch.
struct QuerySpec {
  VariableId query = 0;
  Evidence evidence;
};

class InferenceEngine {
 public:
  struct Options {
    /// Worker threads for the batch APIs. 0 = hardware concurrency.
    std::size_t threads = 0;
    OrderingHeuristic heuristic = OrderingHeuristic::kMinFill;
  };

  /// A point-in-time view of this engine's ordering-cache counters.
  /// The process-wide aggregates live on the obs registry
  /// (`bayesnet.engine.ordering_cache.*`); this struct is the
  /// per-engine window over the same events.
  struct CacheStats {
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t entries = 0;
    [[nodiscard]] double hit_rate() const {
      const std::size_t lookups = hits + misses;
      if (lookups == 0) return 0.0;
      return static_cast<double>(hits) / static_cast<double>(lookups);
    }
  };

  explicit InferenceEngine(const BayesianNetwork& net);
  InferenceEngine(const BayesianNetwork& net, Options options);
  ~InferenceEngine();

  InferenceEngine(const InferenceEngine&) = delete;
  InferenceEngine& operator=(const InferenceEngine&) = delete;

  [[nodiscard]] const BayesianNetwork& network() const { return net_; }
  [[nodiscard]] std::size_t threads() const { return threads_; }

  /// Exact posterior P(query | evidence). Throws std::domain_error with
  /// `impossible_evidence_message` if P(evidence) = 0.
  [[nodiscard]] prob::Categorical query(VariableId query,
                                        const Evidence& evidence = {}) const;

  /// Probability of the evidence, P(e).
  [[nodiscard]] double evidence_probability(const Evidence& evidence) const;

  /// Exact joint of two distinct unobserved variables given evidence.
  [[nodiscard]] prob::JointTable joint(VariableId a, VariableId b,
                                       const Evidence& evidence = {}) const;

  /// Exact posteriors for a batch of queries, fanned across the thread
  /// pool. result[i] corresponds to batch[i]; results are byte-identical
  /// for any thread count. The first failing query's exception (e.g.
  /// impossible evidence) is rethrown after the batch finishes.
  [[nodiscard]] std::vector<prob::Categorical> query_batch(
      const std::vector<QuerySpec>& batch) const;

  /// Approximate posteriors by likelihood weighting, `samples` draws per
  /// query. Query i draws from an RNG stream derived from (seed, i), so a
  /// fixed seed yields byte-identical results for any thread count.
  [[nodiscard]] std::vector<prob::Categorical> sample_batch(
      const std::vector<QuerySpec>& batch, std::size_t samples,
      std::uint64_t seed) const;

  /// Ordering-cache statistics since construction / the last clear /
  /// the last reset_cache_stats().
  [[nodiscard]] CacheStats cache_stats() const;

  /// Zeroes the hit/miss counters without dropping cached orderings, so
  /// long-running batch loops can window their stats per batch. The
  /// process-wide obs counters are unaffected (they aggregate forever).
  void reset_cache_stats();

  void clear_cache();

 private:
  class Pool;

  // Key: sorted evidence keys. The cached ordering eliminates *every*
  // unobserved variable; queries skip their kept variables at execution
  // time, so one plan serves all queries sharing an evidence signature.
  using OrderingKey = std::vector<VariableId>;

  const BayesianNetwork& net_;
  Options options_;
  std::size_t threads_;
  std::vector<Factor> cpt_factors_;  // one per variable, built once
  std::unique_ptr<Pool> pool_;

  mutable std::mutex cache_mu_;
  mutable std::map<OrderingKey, std::shared_ptr<const EliminationOrdering>> cache_;
  mutable std::size_t cache_hits_ = 0;
  mutable std::size_t cache_misses_ = 0;

  [[nodiscard]] std::shared_ptr<const EliminationOrdering> ordering_for(
      const Evidence& evidence) const;
  [[nodiscard]] Factor eliminate_all_but(const std::vector<VariableId>& keep,
                                         const Evidence& evidence) const;
};

}  // namespace sysuq::bayesnet
