#include "bayesnet/builders.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

#include "core/contracts.hpp"
#include "prob/special.hpp"

namespace sysuq::bayesnet {

std::vector<prob::Categorical> noisy_or_cpt(
    const std::vector<double>& link_probabilities, double leak) {
  SYSUQ_EXPECT(!link_probabilities.empty(), "noisy_or_cpt: no parents");
  for (double p : link_probabilities) {
    SYSUQ_ASSERT_PROB(p, "noisy_or_cpt: link probability");
  }
  SYSUQ_ASSERT_PROB(leak, "noisy_or_cpt: leak");

  const std::size_t n = link_probabilities.size();
  const std::size_t rows = std::size_t{1} << n;
  std::vector<prob::Categorical> out;
  out.reserve(rows);
  for (std::size_t cfg = 0; cfg < rows; ++cfg) {
    double not_fire = 1.0 - leak;
    // Bit i of cfg is parent i's state, with the LAST parent varying
    // fastest: parent i corresponds to bit (n - 1 - i).
    for (std::size_t i = 0; i < n; ++i) {
      const bool active = ((cfg >> (n - 1 - i)) & 1u) != 0;
      if (active) not_fire *= 1.0 - link_probabilities[i];
    }
    out.emplace_back(std::vector<double>{not_fire, 1.0 - not_fire});
  }
  return out;
}

std::vector<prob::Categorical> ranked_node_cpt(
    const std::vector<std::size_t>& parent_cards,
    const std::vector<double>& weights, std::size_t child_card, double sigma) {
  SYSUQ_EXPECT(!parent_cards.empty(), "ranked_node_cpt: no parents");
  SYSUQ_EXPECT(weights.size() == parent_cards.size(),
               "ranked_node_cpt: weight count mismatch");
  SYSUQ_EXPECT(child_card >= 2, "ranked_node_cpt: child_card < 2");
  SYSUQ_EXPECT(sigma > 0.0, "ranked_node_cpt: sigma <= 0");
  SYSUQ_EXPECT(contracts::is_finite_nonneg(weights),
               "ranked_node_cpt: negative weight");
  const double wsum = std::accumulate(weights.begin(), weights.end(), 0.0);
  SYSUQ_EXPECT(wsum > 0.0, "ranked_node_cpt: all weights zero");
  for (std::size_t c : parent_cards) {
    SYSUQ_EXPECT(c >= 2, "ranked_node_cpt: parent card < 2");
  }

  const std::size_t n = parent_cards.size();
  std::size_t rows = 1;
  for (std::size_t c : parent_cards) rows *= c;

  // Midpoint of rank r on [0, 1] for a k-state ordinal variable.
  const auto midpoint = [](std::size_t r, std::size_t k) {
    return (static_cast<double>(r) + 0.5) / static_cast<double>(k);
  };

  std::vector<prob::Categorical> out;
  out.reserve(rows);
  std::vector<std::size_t> pstate(n, 0);
  for (std::size_t row = 0; row < rows; ++row) {
    double mu = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      mu += weights[i] * midpoint(pstate[i], parent_cards[i]);
    mu /= wsum;

    // Discretize TNormal(mu, sigma) on [0,1] over child_card equal bins,
    // normalizing by the truncated mass.
    const double z0 = prob::std_normal_cdf((0.0 - mu) / sigma);
    const double z1 = prob::std_normal_cdf((1.0 - mu) / sigma);
    const double mass = z1 - z0;
    std::vector<double> probs(child_card);
    for (std::size_t k = 0; k < child_card; ++k) {
      const double lo = static_cast<double>(k) / static_cast<double>(child_card);
      const double hi =
          static_cast<double>(k + 1) / static_cast<double>(child_card);
      const double plo = prob::std_normal_cdf((lo - mu) / sigma);
      const double phi = prob::std_normal_cdf((hi - mu) / sigma);
      probs[k] = (phi - plo) / mass;
    }
    out.push_back(prob::Categorical::normalized(std::move(probs)));

    for (std::size_t k = n; k-- > 0;) {
      if (++pstate[k] < parent_cards[k]) break;
      pstate[k] = 0;
    }
  }
  return out;
}

std::size_t full_cpt_parameter_count(const std::vector<std::size_t>& parent_cards,
                                     std::size_t child_card) {
  SYSUQ_EXPECT(child_card >= 1,
               "full_cpt_parameter_count: child cardinality must be >= 1");
  std::size_t rows = 1;
  for (std::size_t c : parent_cards) rows *= c;
  return rows * (child_card - 1);
}

}  // namespace sysuq::bayesnet
