#include "bayesnet/io.hpp"

#include <cstdio>
#include <sstream>

namespace sysuq::bayesnet {

std::string to_dot(const BayesianNetwork& net) {
  std::ostringstream os;
  os << "digraph bn {\n  rankdir=TB;\n  node [shape=ellipse];\n";
  for (VariableId v = 0; v < net.size(); ++v) {
    os << "  n" << v << " [label=\"" << net.variable(v).name() << "\"];\n";
  }
  for (VariableId v = 0; v < net.size(); ++v) {
    for (VariableId p : net.parents(v)) {
      os << "  n" << p << " -> n" << v << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

std::string cpt_table(const BayesianNetwork& net, VariableId child) {
  std::ostringstream os;
  const auto& var = net.variable(child);
  const auto& parents = net.parents(child);

  // Header.
  for (VariableId p : parents) os << net.variable(p).name() << " | ";
  for (std::size_t s = 0; s < var.cardinality(); ++s) {
    os << var.state_name(s) << (s + 1 < var.cardinality() ? " " : "");
  }
  os << "\n";

  const auto& rows = net.cpt_rows(child);
  std::vector<std::size_t> pstate(parents.size(), 0);
  for (const auto& row : rows) {
    for (std::size_t i = 0; i < parents.size(); ++i) {
      os << net.variable(parents[i]).state_name(pstate[i]) << " | ";
    }
    for (std::size_t s = 0; s < row.size(); ++s) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.4g", row.p(s));
      os << buf << (s + 1 < row.size() ? " " : "");
    }
    os << "\n";
    for (std::size_t k = parents.size(); k-- > 0;) {
      if (++pstate[k] < net.variable(parents[k]).cardinality()) break;
      pstate[k] = 0;
    }
  }
  return os.str();
}

std::string describe(const BayesianNetwork& net) {
  std::ostringstream os;
  std::size_t edges = 0;
  for (VariableId v = 0; v < net.size(); ++v) edges += net.parents(v).size();
  os << "BayesianNetwork: " << net.size() << " nodes, " << edges << " edges, "
     << net.parameter_count() << " free parameters\n";
  for (VariableId v = 0; v < net.size(); ++v) {
    os << "  " << net.variable(v).name() << " (" << net.variable(v).cardinality()
       << " states)";
    const auto& ps = net.parents(v);
    if (!ps.empty()) {
      os << " <-";
      for (VariableId p : ps) os << " " << net.variable(p).name();
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace sysuq::bayesnet
