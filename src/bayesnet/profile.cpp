#include "bayesnet/profile.hpp"

#include <algorithm>
#include <charconv>

#include "core/contracts.hpp"

namespace sysuq::bayesnet {

namespace {

// Shortest decimal representation that round-trips, matching the obs
// exporters so manifests embedding both stay stylistically consistent.
std::string fmt_double(double v) {
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, res.ptr);
}

void append_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) >= 0x20) out += c;
    }
  }
}

std::string quoted(const std::string& s) {
  std::string out = "\"";
  append_escaped(out, s);
  out += "\"";
  return out;
}

}  // namespace

std::vector<EliminationStepProfile> simulate_elimination(
    const BayesianNetwork& net, const Evidence& evidence,
    const std::vector<VariableId>& order, const std::vector<VariableId>& keep) {
  for (const VariableId v : order) {
    SYSUQ_EXPECT(v < net.size(),
                 "simulate_elimination: order names an unknown variable");
  }
  // Live scopes: one per CPT, with evidence variables reduced away.
  // Scopes are kept as sorted VariableId vectors.
  std::vector<std::vector<VariableId>> scopes;
  scopes.reserve(net.size());
  for (VariableId v = 0; v < net.size(); ++v) {
    std::vector<VariableId> scope = net.parents(v);
    scope.push_back(v);
    std::sort(scope.begin(), scope.end());
    scope.erase(std::remove_if(scope.begin(), scope.end(),
                               [&](VariableId s) { return evidence.contains(s); }),
                scope.end());
    if (!scope.empty()) scopes.push_back(std::move(scope));
  }

  std::vector<EliminationStepProfile> steps;
  for (const VariableId v : order) {
    if (std::find(keep.begin(), keep.end(), v) != keep.end()) continue;
    // Merge every live scope containing v into the step's product scope.
    std::vector<VariableId> product;
    std::vector<std::vector<VariableId>> survivors;
    survivors.reserve(scopes.size());
    for (auto& scope : scopes) {
      if (std::find(scope.begin(), scope.end(), v) == scope.end()) {
        survivors.push_back(std::move(scope));
        continue;
      }
      std::vector<VariableId> merged;
      std::set_union(product.begin(), product.end(), scope.begin(), scope.end(),
                     std::back_inserter(merged));
      product = std::move(merged);
    }
    if (product.empty()) continue;  // variable already summed away

    EliminationStepProfile step;
    step.variable = v;
    step.name = net.variable(v).name();
    step.width = product.size() - 1;
    step.table_cells = 1;
    for (const VariableId s : product)
      step.table_cells *= net.variable(s).cardinality();
    steps.push_back(std::move(step));

    product.erase(std::remove(product.begin(), product.end(), v),
                  product.end());
    if (!product.empty()) survivors.push_back(std::move(product));
    scopes = std::move(survivors);
  }
  return steps;
}

void QueryProfile::zero_costs() {
  calibration_seconds = 0.0;
  propagation_seconds = 0.0;
  arena_high_water_bytes = 0;
  for (auto& s : stages) s.seconds = 0.0;
  total_seconds = 0.0;
}

std::string QueryProfile::to_json() const {
  std::string out = "{\"query\":" + quoted(query) + ",\"evidence\":[";
  bool first = true;
  for (const auto& [var, state] : evidence) {
    if (!first) out += ",";
    first = false;
    out += "{\"variable\":" + quoted(var) + ",\"state\":" + quoted(state) + "}";
  }
  out += "],\"backend\":" + quoted(backend) +
         ",\"reason\":" + quoted(backend_reason) + ",\"plan\":{";
  if (backend == "variable_elimination") {
    out += "\"ordering_cache_hit\":";
    out += ordering_cache_hit ? "true" : "false";
    out += ",\"induced_width\":" + std::to_string(induced_width) +
           ",\"fill_edges\":" + std::to_string(fill_edges) + ",\"steps\":[";
    first = true;
    for (const auto& s : steps) {
      if (!first) out += ",";
      first = false;
      out += "{\"eliminate\":" + quoted(s.name) +
             ",\"width\":" + std::to_string(s.width) +
             ",\"table_cells\":" + std::to_string(s.table_cells) + "}";
    }
    out += "]";
  } else if (backend == "junction_tree") {
    out += "\"jt_cache_hit\":";
    out += jt_cache_hit ? "true" : "false";
    out += ",\"cliques\":[";
    first = true;
    for (const std::size_t c : clique_sizes) {
      if (!first) out += ",";
      first = false;
      out += std::to_string(c);
    }
    out += "],\"max_clique_size\":" + std::to_string(max_clique_size) +
           ",\"calibration_seconds\":" + fmt_double(calibration_seconds);
  } else if (backend == "loopy_bp") {
    out += "\"bp_cache_hit\":";
    out += bp_cache_hit ? "true" : "false";
    out += ",\"schedule\":" + quoted(schedule) +
           ",\"iterations\":" + std::to_string(bp_iterations) +
           ",\"converged\":";
    out += bp_converged ? "true" : "false";
    out += ",\"damping\":" + fmt_double(bp_damping) +
           ",\"final_residual\":" + fmt_double(final_residual) +
           ",\"bound_width\":" + fmt_double(bound_width) +
           ",\"propagation_seconds\":" + fmt_double(propagation_seconds);
  }
  out += "},\"cost\":{\"arena_high_water_bytes\":" +
         std::to_string(arena_high_water_bytes) + ",\"stages\":[";
  first = true;
  for (const auto& s : stages) {
    if (!first) out += ",";
    first = false;
    out += "{\"stage\":" + quoted(s.stage) +
           ",\"seconds\":" + fmt_double(s.seconds) + "}";
  }
  out += "],\"total_seconds\":" + fmt_double(total_seconds) +
         "},\"posterior\":[";
  first = true;
  for (std::size_t i = 0; i < posterior.size(); ++i) {
    if (!first) out += ",";
    first = false;
    out += "{\"state\":" + quoted(i < states.size() ? states[i] : "") +
           ",\"p\":" + fmt_double(posterior[i]) + "}";
  }
  out += "]}";
  return out;
}

std::string QueryProfile::to_plan() const {
  std::string out = "EXPLAIN P(" + query;
  if (!evidence.empty()) {
    out += " | ";
    bool first = true;
    for (const auto& [var, state] : evidence) {
      if (!first) out += ", ";
      first = false;
      out += var + "=" + state;
    }
  }
  out += ")\nbackend: " + backend + " — " + backend_reason + "\n";
  if (backend == "variable_elimination") {
    out += "plan: induced width " + std::to_string(induced_width) + ", " +
           std::to_string(fill_edges) + " fill edges, ordering cache " +
           (ordering_cache_hit ? "HIT" : "MISS") + "\n";
    std::size_t n = 0;
    for (const auto& s : steps) {
      out += "  step " + std::to_string(++n) + ": eliminate " + s.name +
             "  width " + std::to_string(s.width) + "  " +
             std::to_string(s.table_cells) + " cells\n";
    }
  } else if (backend == "junction_tree") {
    out += "plan: " + std::to_string(clique_sizes.size()) +
           " cliques (max size " + std::to_string(max_clique_size) +
           "), tree cache " + (jt_cache_hit ? "HIT" : "MISS") +
           ", calibration " + fmt_double(calibration_seconds) + " s\n";
    out += "  clique sizes:";
    for (const std::size_t c : clique_sizes) out += " " + std::to_string(c);
    out += "\n";
  } else if (backend == "loopy_bp") {
    out += "plan: " + schedule + " schedule, " +
           std::to_string(bp_iterations) + " iterations (" +
           (bp_converged ? "converged" : "iteration cap") + "), damping " +
           fmt_double(bp_damping) + ", run cache " +
           (bp_cache_hit ? "HIT" : "MISS") + "\n";
    out += "  final residual " + fmt_double(final_residual) +
           ", certified bound width " + fmt_double(bound_width) +
           ", propagation " + fmt_double(propagation_seconds) + " s\n";
  }
  out += "cost: arena high-water " + std::to_string(arena_high_water_bytes) +
         " bytes\n";
  for (const auto& s : stages) {
    out += "  " + s.stage;
    out.append(s.stage.size() < 12 ? 12 - s.stage.size() : 1, ' ');
    out += fmt_double(s.seconds) + " s\n";
  }
  out += "  total";
  out.append(7, ' ');
  out += fmt_double(total_seconds) + " s\n";
  out += "posterior:";
  for (std::size_t i = 0; i < posterior.size(); ++i) {
    out += " " + (i < states.size() ? states[i] : std::to_string(i)) + "=" +
           fmt_double(posterior[i]);
  }
  out += "\n";
  return out;
}

}  // namespace sysuq::bayesnet
