// Executable engines for the four means of the paper's taxonomy
// (Sec. IV): prevention, removal, tolerance, forecasting.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "bayesnet/learning.hpp"
#include "bayesnet/network.hpp"
#include "perception/fusion.hpp"
#include "perception/world.hpp"
#include "prob/rng.hpp"

namespace sysuq::sys {

// ---------------------------------------------------------------------
// Uncertainty PREVENTION: restriction of the operational design domain.
// ---------------------------------------------------------------------

/// Effect of an ODD restriction on the uncertainty exposure of a system.
struct PreventionReport {
  double excluded_encounter_fraction;  ///< modeled encounters removed by ODD
  double novel_rate_before;            ///< ontological exposure before
  double novel_rate_after;             ///< ontological exposure after
  double epistemic_parameter_fraction; ///< fraction of CPT parameters still
                                       ///< exercised inside the ODD
};

/// Analyses an ODD restriction: keeping only `keep` classes of the
/// modeled world and scaling the novel-encounter rate by
/// `novel_suppression` (a geo-fenced/structured ODD encounters fewer
/// unknowns). Prevention trades coverage for reduced uncertainty.
[[nodiscard]] PreventionReport apply_odd_restriction(
    const perception::TrueWorld& world, const std::vector<perception::ClassId>& keep,
    double novel_suppression);

// ---------------------------------------------------------------------
// Uncertainty REMOVAL: field observation refining the codified model.
// ---------------------------------------------------------------------

/// One checkpoint of the removal loop.
struct RemovalCheckpoint {
  std::size_t observations;     ///< cumulative field observations
  double epistemic_width;       ///< mean 95% credible width over CPT rows
  double model_gap;             ///< mean TV distance learned CPT vs truth
  std::size_t ontological_events;  ///< unknown-ground-truth encounters seen
};

/// Simulates uncertainty removal during use: the organization starts from
/// an ignorant CPT for `child` in `deployed` and refines it from samples
/// of `truth` (same structure). Checkpoints are recorded at the given
/// observation counts (must be increasing).
class RemovalLoop {
 public:
  /// `truth` provides ground-truth samples; `deployed` is refined
  /// in place at each checkpoint. `unknown_state` is the ground-truth
  /// state index counted as an ontological event (e.g. kGtUnknown).
  RemovalLoop(const bayesnet::BayesianNetwork& truth,
              bayesnet::BayesianNetwork& deployed, bayesnet::VariableId child,
              std::size_t unknown_state, double prior_alpha = 1.0);

  /// Runs until `total` observations, recording a checkpoint at each
  /// count in `checkpoints` (increasing; last must equal `total`).
  [[nodiscard]] std::vector<RemovalCheckpoint> run(
      const std::vector<std::size_t>& checkpoints, prob::Rng& rng);

 private:
  const bayesnet::BayesianNetwork& truth_;
  bayesnet::BayesianNetwork& deployed_;
  bayesnet::VariableId child_;
  std::size_t unknown_state_;
  bayesnet::CptLearner learner_;

  [[nodiscard]] double model_gap() const;
};

// ---------------------------------------------------------------------
// Uncertainty TOLERANCE: redundancy with diverse uncertainties.
// ---------------------------------------------------------------------

/// Comparison of a single-channel and a redundant architecture.
struct ToleranceReport {
  perception::FusionMetrics single;
  perception::FusionMetrics redundant;
  /// hazard(single) / hazard(redundant); > 1 means redundancy helps.
  double hazard_reduction_factor;
};

/// Simulates both architectures on the same world and reports the hazard
/// reduction achieved by the redundant one.
[[nodiscard]] ToleranceReport compare_tolerance(
    const perception::RedundantArchitecture& single,
    const perception::RedundantArchitecture& redundant,
    const perception::TrueWorld& world, std::size_t encounters, prob::Rng& rng);

// ---------------------------------------------------------------------
// Uncertainty FORECASTING: residual uncertainty and release decisions.
// ---------------------------------------------------------------------

/// Evidence gathered before release.
struct ReleaseEvidence {
  std::size_t field_observations = 0;
  double epistemic_width = 1.0;      ///< residual CPT credible width
  double missing_mass = 1.0;         ///< Good-Turing ontological forecast
  std::size_t hazardous_events = 0;  ///< observed hazardous outcomes
};

/// Thresholds a release argument must meet.
struct ReleaseCriteria {
  double max_epistemic_width = 0.05;
  double max_missing_mass = 0.01;
  double max_hazard_rate_upper = 1e-3;  ///< Wilson 95% upper bound
  std::size_t min_observations = 1000;
};

/// Outcome of the forecasting assessment.
struct ReleaseDecision {
  bool ready = false;
  double hazard_rate_upper = 1.0;  ///< Wilson upper bound on hazard rate
  std::vector<std::string> blockers;  ///< unmet criteria, human-readable
};

/// Assesses the residual uncertainty against the criteria — the paper's
/// "estimation of residual uncertainty ... relevant to make a decision
/// about the release of a product".
[[nodiscard]] ReleaseDecision assess_release(const ReleaseEvidence& evidence,
                                             const ReleaseCriteria& criteria);

}  // namespace sysuq::sys
