#include "sys/modeling.hpp"

#include <stdexcept>

#include "sys/decomposition.hpp"
#include "core/contracts.hpp"

namespace sysuq::sys {

ModelFidelityTracker::ModelFidelityTracker(std::size_t prediction_states,
                                           std::size_t outcome_states)
    : rows_(prediction_states),
      cols_(outcome_states),
      counts_(prediction_states, std::vector<std::size_t>(outcome_states, 0)) {
  SYSUQ_EXPECT(prediction_states >= 2 && outcome_states >= 2,
               "ModelFidelityTracker: need >= 2 states");
}

void ModelFidelityTracker::observe(std::size_t predicted, std::size_t observed) {
  if (predicted >= rows_ || observed >= cols_)
    throw std::out_of_range("ModelFidelityTracker::observe: state index");
  counts_[predicted][observed] += 1;
  ++total_;
}

prob::JointTable ModelFidelityTracker::joint() const {
  if (total_ == 0)
    throw std::logic_error("ModelFidelityTracker: no observations");
  std::vector<std::vector<double>> t(rows_, std::vector<double>(cols_, 0.0));
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      t[r][c] = static_cast<double>(counts_[r][c]) / static_cast<double>(total_);
    }
  }
  return prob::JointTable(std::move(t));
}

double ModelFidelityTracker::surprise() const { return surprise_factor(joint()); }

double ModelFidelityTracker::normalized() const {
  return normalized_surprise(joint());
}

double ModelFidelityTracker::agreement() const {
  if (rows_ != cols_)
    throw std::logic_error("ModelFidelityTracker::agreement: state mismatch");
  if (total_ == 0)
    throw std::logic_error("ModelFidelityTracker: no observations");
  std::size_t agree = 0;
  for (std::size_t i = 0; i < rows_; ++i) agree += counts_[i][i];
  return static_cast<double>(agree) / static_cast<double>(total_);
}

std::string ModelFidelityTracker::verdict(double epistemic_threshold,
                                          double ontological_threshold) const {
  SYSUQ_EXPECT(epistemic_threshold > 0.0 &&
                   epistemic_threshold < ontological_threshold &&
                   ontological_threshold < 1.0,
               "ModelFidelityTracker::verdict: thresholds");
  const double ns = normalized();
  if (ns < epistemic_threshold) return "adequate";
  if (ns < ontological_threshold) return "epistemic gap (refine the model)";
  return "ontological gap (extend the model)";
}

}  // namespace sysuq::sys
