#include "sys/cybernetic.hpp"

#include <stdexcept>
#include "core/contracts.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace sysuq::sys {

CyberneticLoop::CyberneticLoop(const perception::TrueWorld& world,
                               const perception::ConfusionSensor& sensor,
                               const DecisionCosts& costs)
    : world_(world), sensor_(sensor), costs_(costs) {
  SYSUQ_EXPECT(costs.wrong_label > 0.0 && costs.abstention >= 0.0,
               "CyberneticLoop: bad costs");
  SYSUQ_EXPECT(sensor.row_count() >= world.total_class_count(),
               "CyberneticLoop: sensor lacks rows for the true world's classes");
  counts_.assign(world.modeled().class_count(),
                 std::vector<std::size_t>(sensor.output_cardinality(), 0));
}

std::vector<prob::Categorical> CyberneticLoop::learned_rows() const {
  std::vector<prob::Categorical> rows;
  rows.reserve(counts_.size());
  for (const auto& row : counts_) {
    std::vector<double> w(row.size());
    for (std::size_t i = 0; i < row.size(); ++i)
      w[i] = static_cast<double>(row[i]) + 1.0;  // Laplace smoothing
    rows.push_back(prob::Categorical::normalized(std::move(w)));
  }
  return rows;
}

std::vector<prob::Categorical> CyberneticLoop::true_rows() const {
  std::vector<prob::Categorical> rows;
  const std::size_t k = world_.modeled().class_count();
  rows.reserve(k);
  for (std::size_t c = 0; c < k; ++c) rows.push_back(sensor_.row(c));
  return rows;
}

double CyberneticLoop::model_gap() const {
  const auto learned = learned_rows();
  const auto truth = true_rows();
  double gap = 0.0;
  for (std::size_t c = 0; c < learned.size(); ++c)
    gap += learned[c].total_variation(truth[c]);
  return gap / static_cast<double>(learned.size());
}

double CyberneticLoop::policy_cost(
    const std::vector<prob::Categorical>& model_rows, prob::Rng& rng,
    std::size_t eval_samples) const {
  const std::size_t k = world_.modeled().class_count();
  const auto& priors = world_.modeled().priors();

  // Decision rule per output: act on the MAP class iff its posterior
  // confidence beats the cost-indifference threshold.
  const double act_threshold = 1.0 - costs_.abstention / costs_.wrong_label;
  std::vector<std::size_t> action(sensor_.output_cardinality(), k);  // k=abstain
  for (std::size_t o = 0; o < sensor_.output_cardinality(); ++o) {
    std::vector<double> post(k);
    double total = 0.0;
    for (std::size_t c = 0; c < k; ++c) {
      post[c] = priors.p(c) * model_rows[c].p(o);
      total += post[c];
    }
    if (!(total > 0.0)) continue;  // abstain on impossible outputs
    std::size_t best = 0;
    for (std::size_t c = 1; c < k; ++c) {
      if (post[c] > post[best]) best = c;
    }
    if (post[best] / total >= act_threshold) action[o] = best;
  }

  // Evaluate the policy against the TRUE world and TRUE sensor.
  double cost = 0.0;
  for (std::size_t s = 0; s < eval_samples; ++s) {
    const auto enc = world_.sample(rng);
    const auto out = sensor_.classify(enc.true_class, rng);
    const std::size_t act = action[out.label];
    if (act == k) {
      cost += costs_.abstention;
    } else if (enc.modeled && act == enc.true_class) {
      cost += costs_.correct;
    } else {
      cost += costs_.wrong_label;
    }
  }
  return cost / static_cast<double>(eval_samples);
}

std::vector<LoopCheckpoint> CyberneticLoop::run(
    const std::vector<std::size_t>& checkpoints, prob::Rng& rng) {
  SYSUQ_EXPECT(!checkpoints.empty(), "CyberneticLoop::run: no checkpoints");
  for (std::size_t i = 1; i < checkpoints.size(); ++i) {
    SYSUQ_EXPECT(checkpoints[i] > checkpoints[i - 1],
                 "CyberneticLoop::run: not increasing");
  }
  auto& registry = obs::Registry::global();
  obs::Counter& encounters = registry.counter("core.cybernetic.encounters");
  obs::Counter& checkpoint_counter =
      registry.counter("core.cybernetic.checkpoints");
  const obs::Span span("core.cybernetic.run");
  std::vector<LoopCheckpoint> out;
  constexpr std::size_t kEvalSamples = 20000;
  for (const std::size_t target : checkpoints) {
    while (seen_ < target) {
      const auto enc = world_.sample(rng);
      const auto obs = sensor_.classify(enc.true_class, rng);
      // Field observation: only encounters the organization can label
      // post-hoc against its ontology enter the codified model.
      if (enc.modeled) counts_[enc.true_class][obs.label] += 1;
      ++seen_;
      encounters.inc();
    }
    checkpoint_counter.inc();
    LoopCheckpoint cp{};
    cp.observations = seen_;
    cp.model_gap = model_gap();
    // Common random numbers: both policies face the identical encounter
    // and sensor stream, so the regret is exactly the policy difference.
    prob::Rng eval_rng_a = rng.split(seen_ * 2 + 1);
    prob::Rng eval_rng_b = eval_rng_a;
    cp.actual_cost = policy_cost(learned_rows(), eval_rng_a, kEvalSamples);
    cp.oracle_cost = policy_cost(true_rows(), eval_rng_b, kEvalSamples);
    cp.regret = cp.actual_cost - cp.oracle_cost;
    out.push_back(cp);
  }
  return out;
}

}  // namespace sysuq::sys
