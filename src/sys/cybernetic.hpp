// The cybernetic development loop of the paper's Fig. 1, executable.
//
// Controlled system: a perception chain operating in a TrueWorld.
// Controlling system: the development organization, whose codified model
// is a learned confusion CPT; its control action is choosing the
// abstention policy that minimizes expected cost *under its own model*.
//
// Conant & Ashby's good-regulator theorem predicts: regulation quality
// (actual cost vs the omniscient policy) improves exactly as the
// organization's model approaches the true system. The simulation
// measures that correspondence.
#pragma once

#include <cstddef>
#include <vector>

#include "perception/sensor.hpp"
#include "perception/world.hpp"
#include "prob/rng.hpp"

namespace sysuq::sys {

/// Costs of perception-driven decisions (per encounter).
struct DecisionCosts {
  double wrong_label = 1.0;   ///< acting on a misclassification (hazard)
  double abstention = 0.1;    ///< degraded service when abstaining ("none")
  double correct = 0.0;       ///< acting on the right label
};

/// One iteration record of the development loop.
struct LoopCheckpoint {
  std::size_t observations;   ///< cumulative field observations
  double model_gap;           ///< mean TV distance model CPT vs true CPT
  double actual_cost;         ///< mean cost of the model-derived policy
  double oracle_cost;         ///< mean cost of the true-model policy
  double regret;              ///< actual - oracle (regulation shortfall)
};

/// Simulates the Fig. 1 loop: observe the deployed system, update the
/// codified model, re-derive the operating policy, measure regulation.
class CyberneticLoop {
 public:
  /// `world`/`sensor` define the controlled system; costs parameterize
  /// the organization's decision problem. The organization starts from a
  /// uniform (ignorant) model of the sensor.
  CyberneticLoop(const perception::TrueWorld& world,
                 const perception::ConfusionSensor& sensor,
                 const DecisionCosts& costs);

  /// Runs the loop, recording a checkpoint at each cumulative
  /// observation count (increasing).
  [[nodiscard]] std::vector<LoopCheckpoint> run(
      const std::vector<std::size_t>& checkpoints, prob::Rng& rng);

 private:
  const perception::TrueWorld& world_;
  const perception::ConfusionSensor& sensor_;
  DecisionCosts costs_;

  /// Per-(true-class, output) observation counts.
  std::vector<std::vector<std::size_t>> counts_;
  std::size_t seen_ = 0;

  /// The policy implied by a confusion model: for each sensor output,
  /// act on the MAP class if its posterior exceeds the cost-derived
  /// threshold, else abstain. Returns expected cost under the TRUE model.
  [[nodiscard]] double policy_cost(
      const std::vector<prob::Categorical>& model_rows, prob::Rng& rng,
      std::size_t eval_samples) const;

  [[nodiscard]] std::vector<prob::Categorical> learned_rows() const;
  [[nodiscard]] std::vector<prob::Categorical> true_rows() const;
  [[nodiscard]] double model_gap() const;
};

}  // namespace sysuq::sys
