#include "sys/longtail.hpp"

#include <cmath>
#include <stdexcept>
#include "core/contracts.hpp"

namespace sysuq::sys {

prob::Categorical zipf_distribution(std::size_t n, double s) {
  SYSUQ_EXPECT(n >= 2, "zipf_distribution: n < 2");
  SYSUQ_EXPECT(s > 0.0, "zipf_distribution: s <= 0");
  std::vector<double> w(n);
  for (std::size_t i = 0; i < n; ++i)
    w[i] = 1.0 / std::pow(static_cast<double>(i + 1), s);
  return prob::Categorical::normalized(std::move(w));
}

double expected_missing_mass(const prob::Categorical& p, std::size_t n) {
  double mass = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    const double pi = p.p(i);
    if (pi > 0.0) {
      // (1 - p)^n via expm1/log1p for numerical stability at large n.
      mass += pi * std::exp(static_cast<double>(n) * std::log1p(-pi));
    }
  }
  return mass;
}

double expected_distinct(const prob::Categorical& p, std::size_t n) {
  double distinct = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    const double pi = p.p(i);
    if (pi > 0.0) {
      distinct += 1.0 - std::exp(static_cast<double>(n) * std::log1p(-pi));
    }
  }
  return distinct;
}

std::size_t observations_for_missing_mass(const prob::Categorical& p,
                                          double target, std::size_t max_n) {
  SYSUQ_EXPECT(target > 0.0 && target < 1.0,
               "observations_for_missing_mass: target in (0,1)");
  if (expected_missing_mass(p, max_n) > target)
    throw std::domain_error(
        "observations_for_missing_mass: target unreachable below max_n");
  std::size_t lo = 0, hi = 1;
  while (expected_missing_mass(p, hi) > target) {
    lo = hi;
    hi = std::min(hi * 2, max_n);
  }
  while (lo + 1 < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (expected_missing_mass(p, mid) > target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

double discovery_rate(const prob::Categorical& p, std::size_t n) {
  return expected_missing_mass(p, n) - expected_missing_mass(p, n + 1);
}

}  // namespace sysuq::sys
