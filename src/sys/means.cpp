#include "sys/means.hpp"

#include <stdexcept>

#include "prob/statistics.hpp"
#include "core/contracts.hpp"

namespace sysuq::sys {

PreventionReport apply_odd_restriction(
    const perception::TrueWorld& world,
    const std::vector<perception::ClassId>& keep, double novel_suppression) {
  SYSUQ_ASSERT_PROB(novel_suppression,
                    "apply_odd_restriction: novel_suppression");
  const auto [restricted, excluded] = world.modeled().restricted(keep);
  PreventionReport r{};
  r.excluded_encounter_fraction = excluded;
  r.novel_rate_before = world.novel_rate();
  r.novel_rate_after = world.novel_rate() * novel_suppression;
  r.epistemic_parameter_fraction =
      static_cast<double>(keep.size()) /
      static_cast<double>(world.modeled().class_count());
  return r;
}

RemovalLoop::RemovalLoop(const bayesnet::BayesianNetwork& truth,
                         bayesnet::BayesianNetwork& deployed,
                         bayesnet::VariableId child, std::size_t unknown_state,
                         double prior_alpha)
    : truth_(truth),
      deployed_(deployed),
      child_(child),
      unknown_state_(unknown_state),
      learner_(deployed, child, prior_alpha) {
  truth_.validate();
  deployed_.validate();
  SYSUQ_EXPECT(truth_.size() == deployed_.size(),
               "RemovalLoop: network size mismatch");
}

double RemovalLoop::model_gap() const {
  const auto& learned = deployed_.cpt_rows(child_);
  const auto& true_rows = truth_.cpt_rows(child_);
  if (learned.size() != true_rows.size())
    throw std::logic_error("RemovalLoop: CPT shape mismatch");
  double gap = 0.0;
  for (std::size_t r = 0; r < learned.size(); ++r)
    gap += learned[r].total_variation(true_rows[r]);
  return gap / static_cast<double>(learned.size());
}

std::vector<RemovalCheckpoint> RemovalLoop::run(
    const std::vector<std::size_t>& checkpoints, prob::Rng& rng) {
  SYSUQ_EXPECT(!checkpoints.empty(), "RemovalLoop::run: no checkpoints");
  for (std::size_t i = 1; i < checkpoints.size(); ++i) {
    SYSUQ_EXPECT(checkpoints[i] > checkpoints[i - 1],
                 "RemovalLoop::run: checkpoints not increasing");
  }
  std::vector<RemovalCheckpoint> out;
  std::size_t seen = 0, ontological = 0;
  // Identify the root whose state encodes the ground truth: the child's
  // first parent (the Table I layout); unknown_state_ indexes its states.
  const auto& parents = deployed_.parents(child_);
  SYSUQ_EXPECT(!parents.empty(), "RemovalLoop: child has no parents");
  const auto gt = parents.front();

  for (const std::size_t target : checkpoints) {
    while (seen < target) {
      const auto sample = truth_.sample(rng);
      learner_.observe(sample);
      if (sample[gt] == unknown_state_) ++ontological;
      ++seen;
    }
    learner_.commit(deployed_);
    out.push_back(RemovalCheckpoint{seen, learner_.epistemic_width(),
                                    model_gap(), ontological});
  }
  return out;
}

ToleranceReport compare_tolerance(
    const perception::RedundantArchitecture& single,
    const perception::RedundantArchitecture& redundant,
    const perception::TrueWorld& world, std::size_t encounters,
    prob::Rng& rng) {
  ToleranceReport r{};
  prob::Rng rng_single = rng.split(1);
  prob::Rng rng_redundant = rng.split(2);
  r.single = perception::simulate_fusion(single, world, encounters, rng_single);
  r.redundant =
      perception::simulate_fusion(redundant, world, encounters, rng_redundant);
  r.hazard_reduction_factor =
      r.redundant.hazard_rate > 0.0
          ? r.single.hazard_rate / r.redundant.hazard_rate
          : std::numeric_limits<double>::infinity();
  return r;
}

ReleaseDecision assess_release(const ReleaseEvidence& evidence,
                               const ReleaseCriteria& criteria) {
  ReleaseDecision d{};
  if (evidence.field_observations > 0) {
    d.hazard_rate_upper =
        prob::wilson_interval(evidence.hazardous_events,
                              evidence.field_observations)
            .second;
  }
  if (evidence.field_observations < criteria.min_observations) {
    d.blockers.push_back("insufficient field observations (" +
                         std::to_string(evidence.field_observations) + " < " +
                         std::to_string(criteria.min_observations) + ")");
  }
  if (evidence.epistemic_width > criteria.max_epistemic_width) {
    d.blockers.push_back("epistemic uncertainty too high (width " +
                         std::to_string(evidence.epistemic_width) + ")");
  }
  if (evidence.missing_mass > criteria.max_missing_mass) {
    d.blockers.push_back("ontological uncertainty too high (missing mass " +
                         std::to_string(evidence.missing_mass) + ")");
  }
  if (d.hazard_rate_upper > criteria.max_hazard_rate_upper) {
    d.blockers.push_back("hazard-rate upper bound too high (" +
                         std::to_string(d.hazard_rate_upper) + ")");
  }
  d.ready = d.blockers.empty();
  return d;
}

}  // namespace sysuq::sys
