// Long-tail validation mathematics (paper refs [30], [31]: "the long tail
// validation challenge", Koopman's "heavy tail safety ceiling").
//
// Given a (possibly heavy-tailed) scenario distribution, these functions
// answer the release questions exactly: how much probability mass is
// still unseen after N observations, how many distinct scenarios will N
// observations discover, and how many observations a target residual
// requires — the quantitative backbone of uncertainty forecasting.
#pragma once

#include <cstddef>
#include <vector>

#include "prob/discrete.hpp"

namespace sysuq::sys {

/// Zipf(s) scenario distribution over n ranked scenario classes:
/// p_i proportional to 1 / (i + 1)^s.
[[nodiscard]] prob::Categorical zipf_distribution(std::size_t n, double s);

/// Expected probability mass of never-seen categories after N i.i.d.
/// observations: sum_i p_i (1 - p_i)^N. This is the quantity the
/// Good–Turing estimator tracks empirically.
[[nodiscard]] double expected_missing_mass(const prob::Categorical& p,
                                           std::size_t n);

/// Expected number of distinct categories seen after N observations.
[[nodiscard]] double expected_distinct(const prob::Categorical& p, std::size_t n);

/// Smallest N with expected missing mass <= target (exponential search +
/// bisection; throws if the target is not reachable below `max_n`).
[[nodiscard]] std::size_t observations_for_missing_mass(
    const prob::Categorical& p, double target,
    std::size_t max_n = 1'000'000'000);

/// The marginal value of the next observation: expected_missing_mass(N) -
/// expected_missing_mass(N+1) — the discovery rate, which for heavy tails
/// decays so slowly that validation by driving alone stalls (the paper's
/// "long furry tail").
[[nodiscard]] double discovery_rate(const prob::Categorical& p, std::size_t n);

}  // namespace sysuq::sys
