// Quantitative decomposition of predictive uncertainty into the paper's
// three types, and the conditional-entropy "surprise factor".
//
// Mapping (Sec. III + the library's measurement choices, documented in
// DESIGN.md):
//   aleatory    — expected entropy of the predictive distribution under
//                 the model posterior (irreducible data noise);
//   epistemic   — mutual information between prediction and model
//                 (ensemble disagreement / credible-interval width);
//   ontological — probability mass the model cannot represent at all:
//                 out-of-model event rate, estimated online via the
//                 Good-Turing missing mass or an explicit unknown state.
#pragma once

#include <string>
#include <vector>

#include "prob/discrete.hpp"
#include "prob/information.hpp"

namespace sysuq::sys {

/// A scalar budget of the three uncertainty types (units: nats for the
/// first two, probability for the ontological component).
struct UncertaintyBudget {
  double aleatory = 0.0;
  double epistemic = 0.0;
  double ontological = 0.0;

  /// The dominant component's name ("aleatory"/"epistemic"/"ontological"),
  /// comparing aleatory/epistemic in nats and treating the ontological
  /// probability as dominant when it exceeds `onto_threshold`.
  [[nodiscard]] std::string dominant(double onto_threshold = 0.1) const;
};

/// Decomposes an ensemble's predictive uncertainty (aleatory + epistemic
/// via the entropy decomposition) and attaches an ontological estimate
/// supplied by the caller (missing mass, unknown-state posterior, or
/// out-of-domain rate).
[[nodiscard]] UncertaintyBudget decompose(
    const std::vector<prob::Categorical>& ensemble_predictions,
    double ontological_mass);

/// The paper's surprise factor: conditional entropy H(system | model) of
/// a joint (model prediction, system outcome) table. Low = the model
/// explains the system; a rise flags epistemic/ontological gaps.
[[nodiscard]] double surprise_factor(const prob::JointTable& model_vs_system);

/// Normalized surprise in [0, 1]: H(system|model) / H(system). 0 = model
/// fully predicts the system; 1 = model carries no information.
[[nodiscard]] double normalized_surprise(const prob::JointTable& model_vs_system);

}  // namespace sysuq::sys
