// The modeling relation (Sec. II.A, after Rosen), executable: given
// paired (model prediction, system outcome) observations, quantify how
// well the formal system encodes the physical one and classify the
// residual gap along the paper's taxonomy.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "prob/information.hpp"

namespace sysuq::sys {

/// Accumulates paired categorical observations of a model's prediction
/// and the system's actual outcome, then reports the fidelity measures
/// the taxonomy needs.
class ModelFidelityTracker {
 public:
  /// `prediction_states` x `outcome_states` contingency table.
  ModelFidelityTracker(std::size_t prediction_states, std::size_t outcome_states);

  /// Records one (predicted, observed) pair.
  void observe(std::size_t predicted, std::size_t observed);

  [[nodiscard]] std::size_t observation_count() const { return total_; }

  /// The empirical joint P(prediction, outcome); throws if empty.
  [[nodiscard]] prob::JointTable joint() const;

  /// Surprise factor H(outcome | prediction) in nats — the paper's
  /// formal epistemic/ontological boundary measure.
  [[nodiscard]] double surprise() const;

  /// Normalized surprise H(outcome | prediction) / H(outcome) in [0, 1].
  [[nodiscard]] double normalized() const;

  /// Agreement rate: fraction of pairs with predicted == observed
  /// (requires equal state counts).
  [[nodiscard]] double agreement() const;

  /// A verdict string per the paper's rule of thumb: a model whose
  /// normalized surprise is below `epistemic_threshold` is "adequate";
  /// between the thresholds "epistemic gap (refine the model)"; above
  /// `ontological_threshold` "ontological gap (extend the model)".
  [[nodiscard]] std::string verdict(double epistemic_threshold = 0.1,
                                    double ontological_threshold = 0.5) const;

 private:
  std::size_t rows_, cols_;
  std::vector<std::vector<std::size_t>> counts_;
  std::size_t total_ = 0;
};

}  // namespace sysuq::sys
