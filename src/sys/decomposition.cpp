#include "sys/decomposition.hpp"

#include <stdexcept>
#include "core/contracts.hpp"

namespace sysuq::sys {

std::string UncertaintyBudget::dominant(double onto_threshold) const {
  SYSUQ_ASSERT_PROB(onto_threshold, "UncertaintyBudget::dominant: threshold");
  if (ontological > onto_threshold) return "ontological";
  return epistemic > aleatory ? "epistemic" : "aleatory";
}

UncertaintyBudget decompose(
    const std::vector<prob::Categorical>& ensemble_predictions,
    double ontological_mass) {
  SYSUQ_ASSERT_PROB(ontological_mass, "decompose: ontological_mass");
  const auto d = prob::decompose_ensemble_entropy(ensemble_predictions);
  UncertaintyBudget b;
  b.aleatory = d.aleatory;
  b.epistemic = d.epistemic;
  b.ontological = ontological_mass;
  return b;
}

double surprise_factor(const prob::JointTable& model_vs_system) {
  // Convention: X = model prediction (rows), Y = system outcome (cols).
  return prob::conditional_entropy_y_given_x(model_vs_system);
}

double normalized_surprise(const prob::JointTable& model_vs_system) {
  const double h_system = model_vs_system.marginal_y().entropy();
  if (h_system == 0.0) return 0.0;  // a deterministic system is never surprising  // sysuq-lint-allow(float-eq): exact-zero entropy
  return surprise_factor(model_vs_system) / h_system;
}

}  // namespace sysuq::sys
