// Dynamic fault trees (Dugan, Bavuso & Boyd 1992 — the paper's cited FTA
// extension [33]) and the continuous-time Markov chain engine they
// compile to.
//
// Static FTA cannot express order-dependent failure logic (priority-AND)
// or standby redundancy (spares) — exactly the "more complex aspects of
// analysis" the paper grants the extensions. A DynamicFaultTree is
// compiled by state-space generation into a CTMC and solved transiently
// by uniformization.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/tolerance.hpp"

namespace sysuq::fta {

/// A finite continuous-time Markov chain (rate matrix form).
class Ctmc {
 public:
  /// `rates[i][j]` is the transition rate i -> j (i != j, >= 0).
  explicit Ctmc(std::vector<std::vector<double>> rates);

  [[nodiscard]] std::size_t size() const { return q_.size(); }
  [[nodiscard]] double rate(std::size_t from, std::size_t to) const;
  /// Total exit rate of a state.
  [[nodiscard]] double exit_rate(std::size_t s) const;

  /// Transient distribution at time t from an initial distribution, via
  /// uniformization with truncation error below `tol`.
  [[nodiscard]] std::vector<double> transient(
      const std::vector<double>& initial, double t, double tol = tolerance::kSolver) const;

 private:
  std::vector<std::vector<double>> q_;
};

/// Gate types of the dynamic fault tree layer.
enum class DynGateType {
  kAnd,    ///< all inputs failed
  kOr,     ///< any input failed
  kKooN,   ///< at least k inputs failed
  kPand,   ///< all inputs failed, strictly in left-to-right order
  kSpare,  ///< primary plus standby spares, exhausted in order
};

/// A dynamic fault tree over exponentially distributed basic events.
///
/// Restrictions (standard for state-space DFT tools): PAND and SPARE
/// inputs must be basic events; each basic event feeds at most one SPARE
/// gate; at most 20 basic events (state space 2^n).
class DynamicFaultTree {
 public:
  using NodeId = std::size_t;

  /// Adds a basic event with failure rate lambda > 0.
  NodeId add_basic_event(const std::string& name, double lambda);

  /// Adds a gate; for kKooN pass k; for kSpare pass the dormancy factor
  /// alpha in [0, 1] (0 = cold spare, 1 = hot spare) — the first child is
  /// the primary, the rest are spares in activation order.
  NodeId add_gate(const std::string& name, DynGateType type,
                  std::vector<NodeId> children, std::size_t k = 0,
                  double dormancy = 1.0);

  /// Declares the top event.
  void set_top(NodeId id);

  [[nodiscard]] std::size_t basic_event_count() const;
  [[nodiscard]] NodeId id_of(const std::string& name) const;

  /// Unreliability F(t) = P(top event by time t), exactly, via the
  /// compiled CTMC.
  [[nodiscard]] double unreliability(double t) const;

  /// F(t) at several time points (shares one CTMC compilation).
  [[nodiscard]] std::vector<double> unreliability_curve(
      const std::vector<double>& times) const;

  /// Number of states in the compiled CTMC (diagnostic).
  [[nodiscard]] std::size_t compiled_state_count() const;

 private:
  struct Node {
    std::string name;
    bool is_basic;
    double lambda = 0.0;
    DynGateType type = DynGateType::kAnd;
    std::vector<NodeId> children;
    std::size_t k = 0;
    double dormancy = 1.0;
  };

  std::vector<Node> nodes_;
  std::size_t top_ = SIZE_MAX;

  struct Compiled {
    Ctmc chain;
    std::vector<double> initial;
    std::vector<bool> failed_state;  ///< per CTMC state: top event fired?
  };
  [[nodiscard]] Compiled compile() const;

  // Failure-order-aware structure evaluation for one CTMC macro state.
  [[nodiscard]] bool evaluate(std::uint32_t failed_mask,
                              std::uint32_t pand_violated,
                              const std::vector<NodeId>& events) const;
  [[nodiscard]] std::vector<NodeId> basic_events() const;
  void check_id(NodeId id) const;
};

}  // namespace sysuq::fta
