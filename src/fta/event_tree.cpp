#include "fta/event_tree.hpp"

#include <stdexcept>
#include "core/contracts.hpp"

namespace sysuq::fta {

EventTree::EventTree(std::string initiating_event, double initiator_frequency)
    : init_name_(std::move(initiating_event)), init_freq_(initiator_frequency) {
  SYSUQ_EXPECT(!init_name_.empty(), "EventTree: empty name");
  SYSUQ_EXPECT(contracts::is_probability(initiator_frequency),
               "EventTree: initiator frequency outside [0, 1]");
}

std::size_t EventTree::add_barrier(const std::string& name,
                                   prob::ProbInterval success_probability) {
  SYSUQ_EXPECT(!name.empty(), "EventTree: empty barrier name");
  SYSUQ_EXPECT(barriers_.size() < 20, "EventTree: too many barriers");
  for (const auto& b : barriers_) {
    if (b.name == name)
      throw std::invalid_argument("EventTree: duplicate barrier '" + name + "'");
  }
  barriers_.push_back(Barrier{name, success_probability});
  consequence_names_.clear();  // sequence space changed
  return barriers_.size() - 1;
}

void EventTree::ensure_consequences() {
  const std::size_t n = std::size_t{1} << barriers_.size();
  if (consequence_names_.size() != n) {
    consequence_names_.assign(n, "");
  }
}

void EventTree::set_consequence(const std::vector<bool>& status,
                                const std::string& name) {
  SYSUQ_EXPECT(status.size() == barriers_.size(),
               "EventTree: status size != barrier count");
  SYSUQ_EXPECT(!name.empty(), "EventTree: empty consequence");
  ensure_consequences();
  std::size_t idx = 0;
  for (std::size_t i = 0; i < status.size(); ++i) {
    if (status[i]) idx |= std::size_t{1} << i;
  }
  consequence_names_[idx] = name;
}

std::vector<EventTree::Outcome> EventTree::outcomes() const {
  const std::size_t n = barriers_.size();
  const std::size_t total = std::size_t{1} << n;
  std::vector<Outcome> out;
  out.reserve(total);
  for (std::size_t seq = 0; seq < total; ++seq) {
    Outcome o;
    o.status.resize(n);
    prob::ProbInterval f(init_freq_);
    for (std::size_t i = 0; i < n; ++i) {
      const bool ok = (seq >> i) & 1u;
      o.status[i] = ok;
      f = f * (ok ? barriers_[i].success : barriers_[i].success.complement());
    }
    o.frequency = f;
    if (seq < consequence_names_.size() && !consequence_names_[seq].empty()) {
      o.consequence = consequence_names_[seq];
    } else {
      std::string bits;
      for (std::size_t i = 0; i < n; ++i) bits += o.status[i] ? 'S' : 'F';
      o.consequence = "sequence-" + (n == 0 ? std::string("-") : bits);
    }
    out.push_back(std::move(o));
  }
  return out;
}

prob::ProbInterval EventTree::consequence_frequency(
    const std::string& name) const {
  double lo = 0.0, hi = 0.0;
  bool found = false;
  for (const auto& o : outcomes()) {
    if (o.consequence == name) {
      lo += o.frequency.lo();
      hi += o.frequency.hi();
      found = true;
    }
  }
  if (!found)
    throw std::invalid_argument("EventTree: no consequence '" + name + "'");
  return {std::min(lo, 1.0), std::min(hi, 1.0)};
}

}  // namespace sysuq::fta
