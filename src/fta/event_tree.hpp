// Event trees: forward consequence analysis from an initiating event
// through a sequence of mitigation barriers (paper ref [35], Ferdous et
// al.: "fault and event tree analyses for process systems risk analysis:
// uncertainty handling formulations").
//
// Where a fault tree asks "what combinations cause the top event?", an
// event tree asks "given the initiator, which outcome do we land in?".
// Barrier success probabilities may be crisp or interval-valued; interval
// analysis yields guaranteed bounds per outcome sequence.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "prob/interval.hpp"

namespace sysuq::fta {

/// An event tree: an initiating event frequency and an ordered list of
/// barriers, each of which independently succeeds or fails. Outcomes are
/// the 2^n barrier-status sequences, mapped to named consequences.
class EventTree {
 public:
  /// `initiator_frequency` — per-demand probability (or per-year rate)
  /// of the initiating event.
  EventTree(std::string initiating_event, double initiator_frequency);

  /// Appends a barrier with its success-probability interval (pass a
  /// degenerate interval for a crisp value). Returns the barrier index.
  std::size_t add_barrier(const std::string& name,
                          prob::ProbInterval success_probability);

  /// Names the consequence of a full barrier-status sequence (`status`
  /// bit i = barrier i succeeded). Unnamed sequences default to
  /// "sequence-<bits>".
  void set_consequence(const std::vector<bool>& status, const std::string& name);

  [[nodiscard]] std::size_t barrier_count() const { return barriers_.size(); }
  [[nodiscard]] const std::string& initiating_event() const { return init_name_; }

  /// One outcome row of the quantified tree.
  struct Outcome {
    std::vector<bool> status;              ///< per-barrier success flags
    std::string consequence;
    prob::ProbInterval frequency{0.0};     ///< initiator x branch probabilities
  };

  /// All 2^n outcome sequences with guaranteed frequency bounds.
  [[nodiscard]] std::vector<Outcome> outcomes() const;

  /// Total frequency bounds of outcomes whose consequence matches `name`
  /// (sums the matching sequences' bounds).
  [[nodiscard]] prob::ProbInterval consequence_frequency(
      const std::string& name) const;

 private:
  struct Barrier {
    std::string name;
    prob::ProbInterval success;
  };
  std::string init_name_;
  double init_freq_;
  std::vector<Barrier> barriers_;
  std::vector<std::string> consequence_names_;  // 2^n entries, lazily sized

  void ensure_consequences();
};

}  // namespace sysuq::fta
