// Quantitative fault-tree analysis: minimal cut sets, exact top-event
// probability, approximations, and importance measures.
#pragma once

#include <functional>
#include <set>
#include <vector>

#include "fta/fault_tree.hpp"
#include "prob/rng.hpp"

namespace sysuq::fta {

/// A cut set: a set of basic events whose joint occurrence causes the top
/// event.
using CutSet = std::set<NodeId>;

/// Minimal cut sets by MOCUS-style top-down expansion followed by
/// minimization. Requires a coherent tree (no NOT gates); KooN gates are
/// expanded into their k-subsets.
[[nodiscard]] std::vector<CutSet> minimal_cut_sets(const FaultTree& tree);

/// Exact top-event probability assuming independent basic events.
/// Shared (repeated) basic events are handled by Shannon conditioning;
/// unshared subtrees evaluate bottom-up in closed form.
[[nodiscard]] double exact_top_probability(const FaultTree& tree);

/// Rare-event approximation from cut sets: sum of cut-set products.
/// Upper-bounds the exact probability for coherent trees.
[[nodiscard]] double rare_event_approximation(const FaultTree& tree);

/// Min-cut upper bound: 1 - prod_k (1 - P(cut_k)). Exact when cut sets
/// are disjoint; otherwise an upper bound for coherent trees.
[[nodiscard]] double min_cut_upper_bound(const FaultTree& tree);

/// Importance measures for one basic event.
struct ImportanceMeasures {
  double birnbaum;        ///< dP(top)/dp_i = P(top | x_i=1) - P(top | x_i=0)
  double criticality;     ///< birnbaum * p_i / P(top)
  double fussell_vesely;  ///< P(some cut set containing i occurs) / P(top)
  double raw;             ///< risk achievement worth: P(top | x_i=1)/P(top)
  double rrw;             ///< risk reduction worth:   P(top)/P(top | x_i=0)
};

/// Computes the standard importance measures for a basic event
/// (coherent trees; throws if P(top) is 0 or 1 degenerate where a ratio
/// would divide by zero).
[[nodiscard]] ImportanceMeasures importance(const FaultTree& tree,
                                            NodeId basic_event);

/// Interval top-event probability for a coherent tree when each basic
/// event's probability is only known to lie in an interval: by
/// monotonicity of coherent structures, evaluate at all-lower and
/// all-upper bounds. `bounds` is indexed parallel to tree.basic_events().
[[nodiscard]] prob::ProbInterval interval_top_probability(
    const FaultTree& tree, const std::vector<prob::ProbInterval>& bounds);

/// Epistemic (parameter) uncertainty propagation a la probabilistic risk
/// assessment: basic-event probabilities are themselves uncertain, drawn
/// from `sampler(event_index, rng)` (clamped to [0, 1]); returns `n`
/// samples of the exact top-event probability. Feed the result to
/// prob::quantile for the PRA percentile curves.
[[nodiscard]] std::vector<double> sample_top_probabilities(
    const FaultTree& tree,
    const std::function<double(std::size_t, prob::Rng&)>& sampler,
    std::size_t n, prob::Rng& rng);

/// Fuzzy top-event probability (Tanaka et al. 1983) for a coherent tree
/// with triangular fuzzy basic-event probabilities: alpha-cut intervals of
/// the top probability at the given resolution. Returns pairs
/// (alpha, interval) for alpha = 1/levels .. 1.
[[nodiscard]] std::vector<std::pair<double, prob::ProbInterval>>
fuzzy_top_probability(const FaultTree& tree,
                      const std::vector<prob::TriangularFuzzy>& fuzzy_probs,
                      std::size_t levels = 10);

}  // namespace sysuq::fta
