// Compiles a fault tree into an equivalent Bayesian network.
//
// This realizes the paper's Sec. V observation that the BN approach
// "allows hierarchical refinement analogous to FTA": basic events become
// Bernoulli roots, gates become deterministic CPT nodes, and standard BN
// inference reproduces FTA's quantitative results — while also supporting
// everything FTA cannot express (diagnosis, soft evidence, extra states).
#pragma once

#include "bayesnet/network.hpp"
#include "fta/fault_tree.hpp"

namespace sysuq::fta {

/// Result of the compilation: the network plus the id mapping.
struct CompiledNetwork {
  bayesnet::BayesianNetwork network;
  std::vector<bayesnet::VariableId> node_map;  ///< FTA NodeId -> BN VariableId
  bayesnet::VariableId top;                    ///< BN id of the top event
};

/// Compiles the fault tree. Every node becomes a binary variable with
/// states {"ok", "failed"}; gate CPTs are deterministic.
[[nodiscard]] CompiledNetwork compile_to_bayesnet(const FaultTree& tree);

}  // namespace sysuq::fta
