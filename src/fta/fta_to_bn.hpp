// Compiles a fault tree into an equivalent Bayesian network.
//
// This realizes the paper's Sec. V observation that the BN approach
// "allows hierarchical refinement analogous to FTA": basic events become
// Bernoulli roots, gates become deterministic CPT nodes, and standard BN
// inference reproduces FTA's quantitative results — while also supporting
// everything FTA cannot express (diagnosis, soft evidence, extra states).
#pragma once

#include "bayesnet/engine.hpp"
#include "bayesnet/network.hpp"
#include "fta/fault_tree.hpp"

namespace sysuq::fta {

/// Result of the compilation: the network plus the id mapping.
struct CompiledNetwork {
  bayesnet::BayesianNetwork network;
  std::vector<bayesnet::VariableId> node_map;  ///< FTA NodeId -> BN VariableId
  bayesnet::VariableId top;                    ///< BN id of the top event
};

/// Compiles the fault tree. Every node becomes a binary variable with
/// states {"ok", "failed"}; gate CPTs are deterministic.
[[nodiscard]] CompiledNetwork compile_to_bayesnet(const FaultTree& tree);

/// Top-event diagnostics computed through a shared InferenceEngine — the
/// diagnosis direction FTA itself cannot express: condition on the top
/// event having failed and read back every node's failure posterior.
struct TopEventDiagnosis {
  double top_probability = 0.0;            ///< P(top = failed)
  /// Per FTA node (indexed like the tree): P(node = failed | top = failed).
  std::vector<double> posterior_given_top;
};

/// Runs the diagnosis as one engine batch (one query per node), reusing
/// the engine's cached elimination ordering across all of them. `engine`
/// must be constructed over `compiled.network`. Throws std::domain_error
/// (impossible evidence) if the top event has probability zero.
[[nodiscard]] TopEventDiagnosis diagnose_top_event(
    const CompiledNetwork& compiled, bayesnet::InferenceEngine& engine);

}  // namespace sysuq::fta
