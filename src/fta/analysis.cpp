#include "fta/analysis.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>
#include <unordered_map>
#include "core/contracts.hpp"

namespace sysuq::fta {

namespace {

// ----------------------------------------------------------- cut sets

// Expands a node into its family of cut sets (sets of basic events).
// Exponential in the worst case, as MOCUS is; minimization happens after.
std::vector<CutSet> expand(const FaultTree& t, NodeId node) {
  if (t.is_basic_event(node)) return {CutSet{node}};
  const auto& ch = t.children(node);
  switch (t.gate_type(node)) {
    case GateType::kOr: {
      std::vector<CutSet> out;
      for (NodeId c : ch) {
        auto sub = expand(t, c);
        out.insert(out.end(), sub.begin(), sub.end());
      }
      return out;
    }
    case GateType::kAnd: {
      std::vector<CutSet> out{CutSet{}};
      for (NodeId c : ch) {
        const auto sub = expand(t, c);
        std::vector<CutSet> next;
        next.reserve(out.size() * sub.size());
        for (const auto& a : out) {
          for (const auto& b : sub) {
            CutSet u = a;
            u.insert(b.begin(), b.end());
            next.push_back(std::move(u));
          }
        }
        out = std::move(next);
      }
      return out;
    }
    case GateType::kKooN: {
      // OR over all k-subsets of children, AND within each subset.
      const std::size_t n = ch.size();
      const std::size_t k = t.koon_k(node);
      std::vector<CutSet> out;
      std::vector<std::size_t> idx(k);
      // Iterate combinations.
      for (std::size_t i = 0; i < k; ++i) idx[i] = i;
      while (true) {
        // AND of the selected children.
        std::vector<CutSet> partial{CutSet{}};
        for (std::size_t i = 0; i < k; ++i) {
          const auto sub = expand(t, ch[idx[i]]);
          std::vector<CutSet> next;
          for (const auto& a : partial) {
            for (const auto& b : sub) {
              CutSet u = a;
              u.insert(b.begin(), b.end());
              next.push_back(std::move(u));
            }
          }
          partial = std::move(next);
        }
        out.insert(out.end(), partial.begin(), partial.end());
        // Next combination.
        std::size_t i = k;
        while (i-- > 0) {
          if (idx[i] != i + n - k) {
            ++idx[i];
            for (std::size_t j = i + 1; j < k; ++j) idx[j] = idx[j - 1] + 1;
            break;
          }
          if (i == 0) return out;
        }
      }
    }
    case GateType::kNot:
      throw std::logic_error("minimal_cut_sets: non-coherent tree (NOT gate)");
  }
  throw std::logic_error("minimal_cut_sets: unknown gate type");
}

std::vector<CutSet> minimize(std::vector<CutSet> cuts) {
  // Remove duplicates and supersets.
  std::sort(cuts.begin(), cuts.end(),
            [](const CutSet& a, const CutSet& b) {
              return a.size() != b.size() ? a.size() < b.size() : a < b;
            });
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
  std::vector<CutSet> minimal;
  for (const auto& c : cuts) {
    bool dominated = false;
    for (const auto& m : minimal) {
      if (std::includes(c.begin(), c.end(), m.begin(), m.end())) {
        dominated = true;
        break;
      }
    }
    if (!dominated) minimal.push_back(c);
  }
  return minimal;
}

// ------------------------------------------------ exact probability

// Basic events that must be conditioned on for independence of the
// bottom-up pass: events reachable from any node with multiple parents,
// plus events referenced more than once.
std::vector<NodeId> shared_events(const FaultTree& t) {
  std::vector<std::size_t> refcount(t.size(), 0);
  for (NodeId i = 0; i < t.size(); ++i) {
    if (t.is_gate(i)) {
      for (NodeId c : t.children(i)) ++refcount[c];
    }
  }
  // Propagate "shared" downward: any node under a multiply-referenced
  // node contributes shared basic events.
  std::vector<bool> shared(t.size(), false);
  for (NodeId i = t.size(); i-- > 0;) {
    bool s = refcount[i] > 1 || shared[i];
    if (s) shared[i] = true;
    if (t.is_gate(i) && shared[i]) {
      for (NodeId c : t.children(i)) shared[c] = true;
    }
  }
  // Re-propagate until fixpoint (children have lower ids, single backward
  // pass over decreasing ids suffices since children precede parents).
  std::vector<NodeId> out;
  for (NodeId e : t.basic_events()) {
    if (shared[e] || refcount[e] > 1) out.push_back(e);
  }
  return out;
}

double bottom_up(const FaultTree& t,
                 const std::map<NodeId, bool>& fixed) {
  std::vector<double> p(t.size(), 0.0);
  for (NodeId i = 0; i < t.size(); ++i) {
    if (t.is_basic_event(i)) {
      const auto it = fixed.find(i);
      p[i] = (it != fixed.end()) ? (it->second ? 1.0 : 0.0) : t.probability(i);
      continue;
    }
    const auto& ch = t.children(i);
    switch (t.gate_type(i)) {
      case GateType::kAnd: {
        double v = 1.0;
        for (NodeId c : ch) v *= p[c];
        p[i] = v;
        break;
      }
      case GateType::kOr: {
        double v = 1.0;
        for (NodeId c : ch) v *= 1.0 - p[c];
        p[i] = 1.0 - v;
        break;
      }
      case GateType::kKooN: {
        // DP over children: dp[j] = P(exactly j of the first i fail).
        std::vector<double> dp(ch.size() + 1, 0.0);
        dp[0] = 1.0;
        for (std::size_t ci = 0; ci < ch.size(); ++ci) {
          const double q = p[ch[ci]];
          for (std::size_t j = ci + 1; j-- > 0;) {
            dp[j + 1] += dp[j] * q;
            dp[j] *= 1.0 - q;
          }
        }
        double v = 0.0;
        for (std::size_t j = t.koon_k(i); j <= ch.size(); ++j) v += dp[j];
        p[i] = v;
        break;
      }
      case GateType::kNot:
        p[i] = 1.0 - p[t.children(i)[0]];
        break;
    }
  }
  return p[t.top()];
}

double conditioned(const FaultTree& t, const std::vector<NodeId>& to_fix,
                   std::size_t next, std::map<NodeId, bool>& fixed) {
  if (next == to_fix.size()) return bottom_up(t, fixed);
  const NodeId e = to_fix[next];
  const double pe = t.probability(e);
  fixed[e] = true;
  const double p1 = conditioned(t, to_fix, next + 1, fixed);
  fixed[e] = false;
  const double p0 = conditioned(t, to_fix, next + 1, fixed);
  fixed.erase(e);
  return pe * p1 + (1.0 - pe) * p0;
}

}  // namespace

std::vector<CutSet> minimal_cut_sets(const FaultTree& tree) {
  tree.validate();
  if (!tree.is_coherent())
    throw std::logic_error("minimal_cut_sets: non-coherent tree");
  return minimize(expand(tree, tree.top()));
}

double exact_top_probability(const FaultTree& tree) {
  tree.validate();
  const auto shared = shared_events(tree);
  if (shared.size() > 24)
    throw std::logic_error("exact_top_probability: too many shared events");
  std::map<NodeId, bool> fixed;
  return conditioned(tree, shared, 0, fixed);
}

double rare_event_approximation(const FaultTree& tree) {
  double total = 0.0;
  for (const auto& cut : minimal_cut_sets(tree)) {
    double prod = 1.0;
    for (NodeId e : cut) prod *= tree.probability(e);
    total += prod;
  }
  return total;
}

double min_cut_upper_bound(const FaultTree& tree) {
  double surv = 1.0;
  for (const auto& cut : minimal_cut_sets(tree)) {
    double prod = 1.0;
    for (NodeId e : cut) prod *= tree.probability(e);
    surv *= 1.0 - prod;
  }
  return 1.0 - surv;
}

ImportanceMeasures importance(const FaultTree& tree, NodeId basic_event) {
  if (!tree.is_basic_event(basic_event))
    throw std::invalid_argument("importance: not a basic event");
  FaultTree work = tree;  // value copy; we mutate probabilities
  const double p = tree.probability(basic_event);
  const double p_top = exact_top_probability(tree);

  work.set_probability(basic_event, 1.0);
  const double p_given_1 = exact_top_probability(work);
  work.set_probability(basic_event, 0.0);
  const double p_given_0 = exact_top_probability(work);

  ImportanceMeasures m{};
  m.birnbaum = p_given_1 - p_given_0;
  if (!(p_top > 0.0))
    throw std::domain_error("importance: P(top) = 0");
  m.criticality = m.birnbaum * p / p_top;
  m.raw = p_given_1 / p_top;
  m.rrw = p_given_0 > 0.0 ? p_top / p_given_0
                          : std::numeric_limits<double>::infinity();

  // Fussell-Vesely: probability that at least one cut set containing the
  // event occurs, evaluated exactly on a synthetic OR-of-ANDs tree.
  std::vector<CutSet> cuts;
  for (const auto& c : minimal_cut_sets(tree)) {
    if (c.contains(basic_event)) cuts.push_back(c);
  }
  if (cuts.empty()) {
    m.fussell_vesely = 0.0;
    return m;
  }
  FaultTree fv;
  std::unordered_map<NodeId, NodeId> remap;
  for (NodeId e : tree.basic_events())
    remap[e] = fv.add_basic_event(tree.name(e), tree.probability(e));
  std::vector<NodeId> ands;
  for (std::size_t i = 0; i < cuts.size(); ++i) {
    std::vector<NodeId> members;
    for (NodeId e : cuts[i]) members.push_back(remap[e]);
    if (members.size() == 1) {
      ands.push_back(members[0]);
    } else {
      ands.push_back(fv.add_gate("cut" + std::to_string(i), GateType::kAnd,
                                 std::move(members)));
    }
  }
  const NodeId top = ands.size() == 1
                         ? ands[0]
                         : fv.add_gate("any_cut", GateType::kOr, std::move(ands));
  fv.set_top(top);
  m.fussell_vesely = exact_top_probability(fv) / p_top;
  return m;
}

prob::ProbInterval interval_top_probability(
    const FaultTree& tree, const std::vector<prob::ProbInterval>& bounds) {
  tree.validate();
  if (!tree.is_coherent())
    throw std::logic_error("interval_top_probability: non-coherent tree");
  const auto events = tree.basic_events();
  if (bounds.size() != events.size())
    throw std::invalid_argument("interval_top_probability: bounds size");
  FaultTree lo = tree, hi = tree;
  for (std::size_t i = 0; i < events.size(); ++i) {
    lo.set_probability(events[i], bounds[i].lo());
    hi.set_probability(events[i], bounds[i].hi());
  }
  // Coherent structure functions are monotone in every component
  // probability, so the extremes are attained at the bound corners.
  return {exact_top_probability(lo), exact_top_probability(hi)};
}

std::vector<double> sample_top_probabilities(
    const FaultTree& tree,
    const std::function<double(std::size_t, prob::Rng&)>& sampler,
    std::size_t n, prob::Rng& rng) {
  tree.validate();
  SYSUQ_EXPECT(n != 0, "sample_top_probabilities: n == 0");
  const auto events = tree.basic_events();
  FaultTree work = tree;
  std::vector<double> out;
  out.reserve(n);
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t i = 0; i < events.size(); ++i) {
      work.set_probability(events[i],
                           std::clamp(sampler(i, rng), 0.0, 1.0));
    }
    out.push_back(exact_top_probability(work));
  }
  return out;
}

std::vector<std::pair<double, prob::ProbInterval>> fuzzy_top_probability(
    const FaultTree& tree, const std::vector<prob::TriangularFuzzy>& fuzzy_probs,
    std::size_t levels) {
  tree.validate();
  SYSUQ_EXPECT(levels != 0, "fuzzy_top_probability: levels");
  const auto events = tree.basic_events();
  SYSUQ_EXPECT(fuzzy_probs.size() == events.size(),
               "fuzzy_top_probability: fuzzy count");
  std::vector<std::pair<double, prob::ProbInterval>> out;
  out.reserve(levels);
  for (std::size_t l = 1; l <= levels; ++l) {
    const double alpha = static_cast<double>(l) / static_cast<double>(levels);
    std::vector<prob::ProbInterval> bounds;
    bounds.reserve(events.size());
    for (const auto& f : fuzzy_probs) {
      const auto [lo, hi] = f.alpha_cut(alpha);
      bounds.emplace_back(std::clamp(lo, 0.0, 1.0), std::clamp(hi, 0.0, 1.0));
    }
    out.emplace_back(alpha, interval_top_probability(tree, bounds));
  }
  return out;
}

}  // namespace sysuq::fta
