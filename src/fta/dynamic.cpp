#include "fta/dynamic.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>
#include "core/contracts.hpp"
#include "core/tolerance.hpp"

namespace sysuq::fta {

// ------------------------------------------------------------------ Ctmc

Ctmc::Ctmc(std::vector<std::vector<double>> rates) : q_(std::move(rates)) {
  if (q_.empty()) throw std::invalid_argument("Ctmc: empty");
  for (std::size_t i = 0; i < q_.size(); ++i) {
    if (q_[i].size() != q_.size())
      throw std::invalid_argument("Ctmc: non-square rate matrix");
    for (std::size_t j = 0; j < q_.size(); ++j) {
      if (i != j && q_[i][j] < 0.0)
        throw std::invalid_argument("Ctmc: negative rate");
    }
  }
}

double Ctmc::rate(std::size_t from, std::size_t to) const {
  if (from >= size() || to >= size()) throw std::out_of_range("Ctmc::rate");
  return from == to ? 0.0 : q_[from][to];
}

double Ctmc::exit_rate(std::size_t s) const {
  if (s >= size()) throw std::out_of_range("Ctmc::exit_rate");
  double total = 0.0;
  for (std::size_t j = 0; j < size(); ++j) {
    if (j != s) total += q_[s][j];
  }
  return total;
}

std::vector<double> Ctmc::transient(const std::vector<double>& initial,
                                    double t, double tol) const {
  SYSUQ_EXPECT(initial.size() == size(), "Ctmc::transient: initial size");
  SYSUQ_EXPECT(t >= 0.0, "Ctmc::transient: negative time");
  SYSUQ_EXPECT(contracts::is_finite_nonneg(initial),
               "Ctmc::transient: negative prob");
  double isum = 0.0;
  for (double v : initial) isum += v;
  SYSUQ_EXPECT(std::fabs(isum - 1.0) <= tolerance::kProbSum,
               "Ctmc::transient: initial not normalized");
  if (t == 0.0) return initial;  // sysuq-lint-allow(float-eq): exact t = 0 fast path

  // Uniformization rate (strictly positive; add epsilon for pure-absorbing
  // chains so the DTMC is well formed).
  double q = tolerance::kTiny;
  for (std::size_t s = 0; s < size(); ++s) q = std::max(q, exit_rate(s));
  q *= 1.05;

  // Keep q*t per segment bounded so exp(-qt) stays representable.
  const double max_qt = 200.0;
  const auto segments = static_cast<std::size_t>(std::ceil(q * t / max_qt));
  if (segments > 1) {
    std::vector<double> dist = initial;
    const double seg_t = t / static_cast<double>(segments);
    for (std::size_t s = 0; s < segments; ++s) dist = transient(dist, seg_t, tol);
    return dist;
  }

  // DTMC step of the uniformized chain: v' = v * (I + Q/q).
  const auto step = [&](const std::vector<double>& v) {
    std::vector<double> out(size(), 0.0);
    for (std::size_t s = 0; s < size(); ++s) {
      if (v[s] == 0.0) continue;  // sysuq-lint-allow(float-eq): skip zero mass
      double stay = 1.0 - exit_rate(s) / q;
      out[s] += v[s] * stay;
      for (std::size_t j = 0; j < size(); ++j) {
        if (j != s && q_[s][j] > 0.0) out[j] += v[s] * q_[s][j] / q;
      }
    }
    return out;
  };

  const double qt = q * t;
  std::vector<double> v = initial;
  std::vector<double> result(size(), 0.0);
  double poisson = std::exp(-qt);  // weight of k = 0
  double cumulative = poisson;
  for (std::size_t s = 0; s < size(); ++s) result[s] += poisson * v[s];
  for (std::size_t k = 1; cumulative < 1.0 - tol; ++k) {
    v = step(v);
    poisson *= qt / static_cast<double>(k);
    cumulative += poisson;
    for (std::size_t s = 0; s < size(); ++s) result[s] += poisson * v[s];
    if (k > 100000)
      throw std::runtime_error("Ctmc::transient: uniformization overrun");
  }
  // Assign truncation remainder to the final iterate (keeps sum at 1).
  const double rem = std::max(0.0, 1.0 - cumulative);
  for (std::size_t s = 0; s < size(); ++s) result[s] += rem * v[s];
  return result;
}

// ------------------------------------------------------- DynamicFaultTree

void DynamicFaultTree::check_id(NodeId id) const {
  if (id >= nodes_.size()) throw std::out_of_range("DynamicFaultTree: node id");
}

DynamicFaultTree::NodeId DynamicFaultTree::add_basic_event(
    const std::string& name, double lambda) {
  SYSUQ_EXPECT(!name.empty(), "DynamicFaultTree: empty name");
  SYSUQ_EXPECT(lambda > 0.0, "DynamicFaultTree: rate must be > 0");
  for (const auto& n : nodes_) {
    if (n.name == name)
      throw std::invalid_argument("DynamicFaultTree: duplicate '" + name + "'");
  }
  Node n;
  n.name = name;
  n.is_basic = true;
  n.lambda = lambda;
  nodes_.push_back(std::move(n));
  return nodes_.size() - 1;
}

DynamicFaultTree::NodeId DynamicFaultTree::add_gate(
    const std::string& name, DynGateType type, std::vector<NodeId> children,
    std::size_t k, double dormancy) {
  SYSUQ_EXPECT(!name.empty(), "DynamicFaultTree: empty name");
  for (const auto& n : nodes_) {
    if (n.name == name)
      throw std::invalid_argument("DynamicFaultTree: duplicate '" + name + "'");
  }
  SYSUQ_EXPECT(!children.empty(), "DynamicFaultTree: gate with no children");
  for (NodeId c : children) check_id(c);
  SYSUQ_EXPECT(type != DynGateType::kKooN || (k >= 1 && k <= children.size()),
               "DynamicFaultTree: bad KooN k");
  if (type == DynGateType::kPand || type == DynGateType::kSpare) {
    if (children.size() < 2)
      throw std::invalid_argument("DynamicFaultTree: PAND/SPARE need >= 2 inputs");
    for (NodeId c : children) {
      if (!nodes_[c].is_basic)
        throw std::invalid_argument(
            "DynamicFaultTree: PAND/SPARE inputs must be basic events");
    }
  }
  if (type == DynGateType::kSpare) {
    SYSUQ_EXPECT(contracts::is_probability(dormancy),
                 "DynamicFaultTree: dormancy outside [0, 1]");
    // An event may belong to at most one spare gate.
    for (const auto& n : nodes_) {
      if (n.is_basic || n.type != DynGateType::kSpare) continue;
      for (NodeId c : children) {
        if (std::find(n.children.begin(), n.children.end(), c) !=
            n.children.end())
          throw std::invalid_argument(
              "DynamicFaultTree: event in multiple SPARE gates");
      }
    }
  }
  Node n;
  n.name = name;
  n.is_basic = false;
  n.type = type;
  n.children = std::move(children);
  n.k = k;
  n.dormancy = dormancy;
  nodes_.push_back(std::move(n));
  return nodes_.size() - 1;
}

void DynamicFaultTree::set_top(NodeId id) {
  check_id(id);
  top_ = id;
}

std::size_t DynamicFaultTree::basic_event_count() const {
  std::size_t n = 0;
  for (const auto& node : nodes_) n += node.is_basic ? 1 : 0;
  return n;
}

DynamicFaultTree::NodeId DynamicFaultTree::id_of(const std::string& name) const {
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].name == name) return i;
  }
  throw std::invalid_argument("DynamicFaultTree: no node '" + name + "'");
}

std::vector<DynamicFaultTree::NodeId> DynamicFaultTree::basic_events() const {
  std::vector<NodeId> out;
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].is_basic) out.push_back(i);
  }
  return out;
}

bool DynamicFaultTree::evaluate(std::uint32_t failed_mask,
                                std::uint32_t pand_violated,
                                const std::vector<NodeId>& events) const {
  // Position of each basic event in the mask.
  std::unordered_map<NodeId, std::size_t> pos;
  for (std::size_t i = 0; i < events.size(); ++i) pos[events[i]] = i;
  const auto event_failed = [&](NodeId e) {
    return ((failed_mask >> pos.at(e)) & 1u) != 0;
  };

  std::vector<bool> value(nodes_.size(), false);
  std::size_t pand_index = 0;
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    const auto& n = nodes_[i];
    if (n.is_basic) {
      value[i] = event_failed(i);
      continue;
    }
    std::size_t failed = 0;
    for (NodeId c : n.children) failed += value[c] ? 1 : 0;
    switch (n.type) {
      case DynGateType::kAnd:
        value[i] = failed == n.children.size();
        break;
      case DynGateType::kOr:
        value[i] = failed >= 1;
        break;
      case DynGateType::kKooN:
        value[i] = failed >= n.k;
        break;
      case DynGateType::kPand: {
        const bool violated = ((pand_violated >> pand_index) & 1u) != 0;
        value[i] = failed == n.children.size() && !violated;
        ++pand_index;
        break;
      }
      case DynGateType::kSpare:
        value[i] = failed == n.children.size();
        break;
    }
  }
  return value[top_];
}

DynamicFaultTree::Compiled DynamicFaultTree::compile() const {
  if (top_ == SIZE_MAX)
    throw std::logic_error("DynamicFaultTree: top event not set");
  const auto events = basic_events();
  if (events.empty() || events.size() > 20)
    throw std::logic_error("DynamicFaultTree: need 1..20 basic events");

  std::unordered_map<NodeId, std::size_t> pos;
  for (std::size_t i = 0; i < events.size(); ++i) pos[events[i]] = i;

  // PAND gates in evaluation order; SPARE membership per event.
  std::vector<const Node*> pands;
  struct SpareInfo {
    const Node* gate;
    std::size_t position;  // index within the gate's child chain
  };
  std::unordered_map<NodeId, SpareInfo> spare_of;
  for (const auto& n : nodes_) {
    if (n.is_basic) continue;
    if (n.type == DynGateType::kPand) pands.push_back(&n);
    if (n.type == DynGateType::kSpare) {
      for (std::size_t j = 0; j < n.children.size(); ++j)
        spare_of[n.children[j]] = SpareInfo{&n, j};
    }
  }
  if (pands.size() > 12)
    throw std::logic_error("DynamicFaultTree: too many PAND gates");

  // State key: failed_mask | (pand_violated << n_events).
  const std::size_t n = events.size();
  const auto key_of = [n](std::uint32_t failed, std::uint32_t violated) {
    return (static_cast<std::uint64_t>(violated) << n) | failed;
  };

  std::unordered_map<std::uint64_t, std::size_t> index;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> states;  // (failed, viol)
  std::vector<std::vector<std::pair<std::size_t, double>>> transitions;

  const auto intern = [&](std::uint32_t failed, std::uint32_t violated) {
    const auto key = key_of(failed, violated);
    const auto it = index.find(key);
    if (it != index.end()) return it->second;
    const std::size_t id = states.size();
    index.emplace(key, id);
    states.emplace_back(failed, violated);
    transitions.emplace_back();
    return id;
  };

  // Failure rate of event e in a given macro state (0 = cannot fail now).
  const auto rate_of = [&](NodeId e, std::uint32_t failed) {
    const double lambda = nodes_[e].lambda;
    const auto it = spare_of.find(e);
    if (it == spare_of.end()) return lambda;
    // Within a SPARE chain: units before the active one are failed; the
    // active unit runs at full rate; later spares are dormant.
    const auto& chain = it->second.gate->children;
    std::size_t active = chain.size();
    for (std::size_t j = 0; j < chain.size(); ++j) {
      if (((failed >> pos.at(chain[j])) & 1u) == 0) {
        active = j;
        break;
      }
    }
    if (it->second.position == active) return lambda;
    if (it->second.position > active) return it->second.gate->dormancy * lambda;
    return 0.0;  // already failed; unreachable here
  };

  (void)intern(0, 0);
  for (std::size_t s = 0; s < states.size(); ++s) {
    const auto [failed, violated] = states[s];
    for (std::size_t i = 0; i < n; ++i) {
      if ((failed >> i) & 1u) continue;
      const NodeId e = events[i];
      const double rate = rate_of(e, failed);
      if (!(rate > 0.0)) continue;
      const std::uint32_t nfailed = failed | (1u << i);
      std::uint32_t nviol = violated;
      for (std::size_t g = 0; g < pands.size(); ++g) {
        const auto& ch = pands[g]->children;
        const auto at = std::find(ch.begin(), ch.end(), e);
        if (at == ch.end()) continue;
        // Order violated if any left sibling is still operational.
        for (auto left = ch.begin(); left != at; ++left) {
          if (((failed >> pos.at(*left)) & 1u) == 0) {
            nviol |= (1u << g);
            break;
          }
        }
      }
      const std::size_t target = intern(nfailed, nviol);
      transitions[s].emplace_back(target, rate);
    }
  }

  std::vector<std::vector<double>> q(states.size(),
                                     std::vector<double>(states.size(), 0.0));
  for (std::size_t s = 0; s < states.size(); ++s) {
    for (const auto& [t, r] : transitions[s]) q[s][t] += r;
  }

  Compiled out{Ctmc(std::move(q)), std::vector<double>(states.size(), 0.0), {}};
  out.initial[0] = 1.0;
  out.failed_state.reserve(states.size());
  for (const auto& [failed, violated] : states)
    out.failed_state.push_back(evaluate(failed, violated, events));
  return out;
}

double DynamicFaultTree::unreliability(double t) const {
  return unreliability_curve({t})[0];
}

std::vector<double> DynamicFaultTree::unreliability_curve(
    const std::vector<double>& times) const {
  const auto compiled = compile();
  std::vector<double> out;
  out.reserve(times.size());
  for (const double t : times) {
    const auto dist = compiled.chain.transient(compiled.initial, t);
    double p = 0.0;
    for (std::size_t s = 0; s < dist.size(); ++s) {
      if (compiled.failed_state[s]) p += dist[s];
    }
    out.push_back(p);
  }
  return out;
}

std::size_t DynamicFaultTree::compiled_state_count() const {
  return compile().chain.size();
}

}  // namespace sysuq::fta
