#include "fta/fault_tree.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>
#include "core/contracts.hpp"

namespace sysuq::fta {

const char* gate_type_name(GateType t) {
  switch (t) {
    case GateType::kAnd: return "AND";
    case GateType::kOr: return "OR";
    case GateType::kKooN: return "KooN";
    case GateType::kNot: return "NOT";
  }
  return "?";
}

void FaultTree::check_id(NodeId id) const {
  if (id >= nodes_.size()) throw std::out_of_range("FaultTree: bad node id");
}

NodeId FaultTree::add_basic_event(const std::string& name, double probability) {
  SYSUQ_EXPECT(!name.empty(), "FaultTree: empty name");
  SYSUQ_EXPECT(contracts::is_probability(probability),
               "FaultTree: probability outside [0, 1]");
  for (const auto& n : nodes_) {
    if (n.name == name)
      throw std::invalid_argument("FaultTree: duplicate name '" + name + "'");
  }
  Node n;
  n.name = name;
  n.is_basic = true;
  n.probability = probability;
  nodes_.push_back(std::move(n));
  return nodes_.size() - 1;
}

NodeId FaultTree::add_gate(const std::string& name, GateType type,
                           std::vector<NodeId> children, std::size_t k) {
  SYSUQ_EXPECT(!name.empty(), "FaultTree: empty name");
  for (const auto& n : nodes_) {
    if (n.name == name)
      throw std::invalid_argument("FaultTree: duplicate name '" + name + "'");
  }
  SYSUQ_EXPECT(!children.empty(), "FaultTree: gate with no children");
  for (NodeId c : children) check_id(c);  // children precede gate: acyclic
  SYSUQ_EXPECT(type != GateType::kNot || children.size() == 1,
               "FaultTree: NOT gate needs exactly one child");
  SYSUQ_EXPECT(type != GateType::kKooN || (k >= 1 && k <= children.size()),
               "FaultTree: KooN needs 1 <= k <= n");
  Node n;
  n.name = name;
  n.is_basic = false;
  n.type = type;
  n.children = std::move(children);
  n.k = k;
  nodes_.push_back(std::move(n));
  return nodes_.size() - 1;
}

void FaultTree::set_top(NodeId id) {
  check_id(id);
  top_ = id;
}

NodeId FaultTree::top() const {
  if (!top_) throw std::logic_error("FaultTree: top event not set");
  return *top_;
}

std::size_t FaultTree::basic_event_count() const {
  std::size_t n = 0;
  for (const auto& node : nodes_) n += node.is_basic ? 1 : 0;
  return n;
}

bool FaultTree::is_basic_event(NodeId id) const {
  check_id(id);
  return nodes_[id].is_basic;
}

bool FaultTree::is_gate(NodeId id) const { return !is_basic_event(id); }

const std::string& FaultTree::name(NodeId id) const {
  check_id(id);
  return nodes_[id].name;
}

NodeId FaultTree::id_of(const std::string& name) const {
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].name == name) return i;
  }
  throw std::invalid_argument("FaultTree: no node '" + name + "'");
}

double FaultTree::probability(NodeId basic_event) const {
  check_id(basic_event);
  if (!nodes_[basic_event].is_basic)
    throw std::invalid_argument("FaultTree::probability: not a basic event");
  return nodes_[basic_event].probability;
}

GateType FaultTree::gate_type(NodeId gate) const {
  check_id(gate);
  if (nodes_[gate].is_basic)
    throw std::invalid_argument("FaultTree::gate_type: not a gate");
  return nodes_[gate].type;
}

const std::vector<NodeId>& FaultTree::children(NodeId gate) const {
  check_id(gate);
  if (nodes_[gate].is_basic)
    throw std::invalid_argument("FaultTree::children: not a gate");
  return nodes_[gate].children;
}

std::size_t FaultTree::koon_k(NodeId gate) const {
  if (gate_type(gate) != GateType::kKooN)
    throw std::invalid_argument("FaultTree::koon_k: not a KooN gate");
  return nodes_[gate].k;
}

void FaultTree::set_probability(NodeId basic_event, double p) {
  check_id(basic_event);
  if (!nodes_[basic_event].is_basic)
    throw std::invalid_argument("FaultTree::set_probability: not a basic event");
  SYSUQ_EXPECT(contracts::is_probability(p),
               "FaultTree::set_probability: outside [0, 1]");
  nodes_[basic_event].probability = p;
}

std::vector<NodeId> FaultTree::basic_events() const {
  std::vector<NodeId> out;
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].is_basic) out.push_back(i);
  }
  return out;
}

bool FaultTree::is_coherent() const {
  for (const auto& n : nodes_) {
    if (!n.is_basic && n.type == GateType::kNot) return false;
  }
  return true;
}

void FaultTree::validate() const {
  (void)top();
  if (basic_event_count() == 0)
    throw std::logic_error("FaultTree: no basic events");
}

bool FaultTree::evaluate_structure(const std::vector<bool>& basic_state) const {
  validate();
  const auto events = basic_events();
  if (basic_state.size() != events.size())
    throw std::invalid_argument("FaultTree::evaluate_structure: state size");
  std::unordered_map<NodeId, bool> state;
  for (std::size_t i = 0; i < events.size(); ++i) state[events[i]] = basic_state[i];

  // Nodes are topologically ordered by construction (children first).
  std::vector<bool> value(nodes_.size(), false);
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    const auto& n = nodes_[i];
    if (n.is_basic) {
      value[i] = state.at(i);
      continue;
    }
    switch (n.type) {
      case GateType::kAnd: {
        bool v = true;
        for (NodeId c : n.children) v = v && value[c];
        value[i] = v;
        break;
      }
      case GateType::kOr: {
        bool v = false;
        for (NodeId c : n.children) v = v || value[c];
        value[i] = v;
        break;
      }
      case GateType::kKooN: {
        std::size_t count = 0;
        for (NodeId c : n.children) count += value[c] ? 1 : 0;
        value[i] = count >= n.k;
        break;
      }
      case GateType::kNot:
        value[i] = !value[n.children[0]];
        break;
    }
  }
  return value[top()];
}

}  // namespace sysuq::fta
