#include "fta/fta_to_bn.hpp"

#include <stdexcept>

#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace sysuq::fta {

CompiledNetwork compile_to_bayesnet(const FaultTree& tree) {
  tree.validate();
  CompiledNetwork out;
  out.node_map.resize(tree.size());

  for (NodeId i = 0; i < tree.size(); ++i) {
    out.node_map[i] =
        out.network.add_variable(tree.name(i), {"ok", "failed"});
  }

  for (NodeId i = 0; i < tree.size(); ++i) {
    const auto bn_id = out.node_map[i];
    if (tree.is_basic_event(i)) {
      const double p = tree.probability(i);
      out.network.set_cpt(bn_id, {},
                          {prob::Categorical({1.0 - p, p})});
      continue;
    }
    const auto& ch = tree.children(i);
    std::vector<bayesnet::VariableId> parents;
    parents.reserve(ch.size());
    for (NodeId c : ch) parents.push_back(out.node_map[c]);

    const std::size_t rows = std::size_t{1} << ch.size();
    std::vector<prob::Categorical> cpt;
    cpt.reserve(rows);
    for (std::size_t cfg = 0; cfg < rows; ++cfg) {
      // Bit b of cfg is child b's state with the LAST parent varying
      // fastest: child j corresponds to bit (n - 1 - j); state 1 = failed.
      std::size_t failed = 0;
      for (std::size_t j = 0; j < ch.size(); ++j) {
        failed += (cfg >> (ch.size() - 1 - j)) & 1u;
      }
      bool fires = false;
      switch (tree.gate_type(i)) {
        case GateType::kAnd: fires = failed == ch.size(); break;
        case GateType::kOr: fires = failed >= 1; break;
        case GateType::kKooN: fires = failed >= tree.koon_k(i); break;
        case GateType::kNot: fires = failed == 0; break;
      }
      cpt.push_back(prob::Categorical::delta(fires ? 1 : 0, 2));
    }
    out.network.set_cpt(bn_id, std::move(parents), std::move(cpt));
  }

  out.top = out.node_map[tree.top()];
  return out;
}

TopEventDiagnosis diagnose_top_event(const CompiledNetwork& compiled,
                                     bayesnet::InferenceEngine& engine) {
  if (&engine.network() != &compiled.network)
    throw std::invalid_argument(
        "diagnose_top_event: engine not built over compiled.network");

  auto& registry = obs::Registry::global();
  const obs::Span span("fta.diagnose_top_event");
  const obs::HistogramTimer timer(
      registry.histogram("fta.diagnosis.seconds", obs::seconds_buckets()));
  registry.counter("fta.diagnosis.runs").inc();

  TopEventDiagnosis out;
  out.top_probability = engine.query(compiled.top).p(1);

  const bayesnet::Evidence top_failed{{compiled.top, 1}};
  std::vector<bayesnet::QuerySpec> batch;
  batch.reserve(compiled.node_map.size());
  for (bayesnet::VariableId id : compiled.node_map)
    batch.push_back({id, top_failed});

  const auto posteriors = engine.query_batch(batch);
  out.posterior_given_top.reserve(posteriors.size());
  for (const auto& p : posteriors) out.posterior_given_top.push_back(p.p(1));
  return out;
}

}  // namespace sysuq::fta
