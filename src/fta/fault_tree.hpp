// Static fault trees (FTA), the established safety-analysis method the
// paper contrasts with its evidential-BN proposal in Sec. V.
//
// A fault tree is a DAG of Boolean gates over basic events; the top event
// models the system-level failure. Basic events may be shared between
// gates (common-cause structure), which the exact probability engine
// handles by conditioning.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "prob/fuzzy.hpp"
#include "prob/interval.hpp"

namespace sysuq::fta {

/// Node index within a FaultTree (basic events and gates share the space).
using NodeId = std::size_t;

/// Gate types. kNot makes a tree non-coherent: cut-set and monotone
/// interval analyses refuse such trees, exact evaluation still works.
enum class GateType { kAnd, kOr, kKooN, kNot };

/// Returns a printable name for a gate type.
// sysuq-lint-allow(contract-coverage): total over the GateType enum
[[nodiscard]] const char* gate_type_name(GateType t);

/// A static fault tree under construction and analysis.
class FaultTree {
 public:
  /// Adds a basic event with failure probability p in [0, 1].
  NodeId add_basic_event(const std::string& name, double probability);

  /// Adds a gate over existing nodes. For kKooN, `k` must satisfy
  /// 1 <= k <= children.size(); for kNot exactly one child.
  NodeId add_gate(const std::string& name, GateType type,
                  std::vector<NodeId> children, std::size_t k = 0);

  /// Declares the top (undesired) event.
  void set_top(NodeId id);

  /// The declared top event; throws if unset.
  [[nodiscard]] NodeId top() const;

  /// Number of nodes (events + gates).
  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  /// Number of basic events.
  [[nodiscard]] std::size_t basic_event_count() const;

  [[nodiscard]] bool is_basic_event(NodeId id) const;
  [[nodiscard]] bool is_gate(NodeId id) const;
  [[nodiscard]] const std::string& name(NodeId id) const;
  [[nodiscard]] NodeId id_of(const std::string& name) const;
  [[nodiscard]] double probability(NodeId basic_event) const;
  [[nodiscard]] GateType gate_type(NodeId gate) const;
  [[nodiscard]] const std::vector<NodeId>& children(NodeId gate) const;
  [[nodiscard]] std::size_t koon_k(NodeId gate) const;

  /// Updates a basic event's probability (for sweeps / importance).
  void set_probability(NodeId basic_event, double p);

  /// All basic-event ids.
  [[nodiscard]] std::vector<NodeId> basic_events() const;

  /// True if the tree contains no kNot gates (monotone structure).
  [[nodiscard]] bool is_coherent() const;

  /// Throws std::logic_error unless the top is set and every gate's
  /// children exist (acyclicity is guaranteed by construction: children
  /// must precede their gate).
  void validate() const;

  /// Evaluates the structure function for a full basic-event state vector
  /// (indexed by basic-event id order as returned by basic_events()).
  [[nodiscard]] bool evaluate_structure(const std::vector<bool>& basic_state) const;

 private:
  struct Node {
    std::string name;
    bool is_basic;
    double probability = 0.0;               // basic events
    GateType type = GateType::kAnd;         // gates
    std::vector<NodeId> children;           // gates
    std::size_t k = 0;                      // kKooN
  };

  std::vector<Node> nodes_;
  std::optional<NodeId> top_;

  void check_id(NodeId id) const;
};

}  // namespace sysuq::fta
