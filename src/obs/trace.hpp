// sysuq::obs — scoped tracing for the inference stack.
//
// `Span` is an RAII scoped timer: it stamps the wall clock at
// construction and records a completed event into a `TraceSink` at
// destruction, carrying the per-thread nesting depth so parent/child
// structure survives into the export. The sink is a bounded ring buffer
// (old events are overwritten, never reallocated past capacity) with a
// Chrome `trace_event`-format JSON exporter — load the output in
// chrome://tracing or Perfetto.
//
// Tracing is opt-in: the global sink starts disabled, and a `Span`
// created against a disabled sink never reads the clock. With
// `-DSYSUQ_OBS=OFF` the whole layer compiles to inline no-ops.
//
// Thread safety: `record`, `snapshot`, exporters and the enable switch
// are safe to call concurrently; `Span` itself is used from one thread
// (its depth bookkeeping is thread-local).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/context.hpp"

#if !defined(SYSUQ_OBS_OFF)
#include <atomic>
#include <mutex>
#endif

namespace sysuq::obs {

/// One completed span, timestamps in microseconds since the process
/// trace epoch (the first call to `trace_now_us`).
struct TraceEvent {
  std::string name;
  std::uint64_t start_us = 0;
  std::uint64_t dur_us = 0;
  std::uint32_t depth = 0;  ///< 1 = top-level span within its thread
  std::uint64_t tid = 0;
  std::uint64_t seq = 0;  ///< global record order
  std::uint64_t trace_id = 0;     ///< query trace this span belongs to (0 = untraced)
  std::uint64_t span_id = 0;      ///< process-unique id of this span (0 = unassigned)
  std::uint64_t parent_span = 0;  ///< span id of the parent (0 = trace root)
};

#if !defined(SYSUQ_OBS_OFF)

/// Microseconds on the steady clock since the process trace epoch.
[[nodiscard]] std::uint64_t trace_now_us() noexcept;

/// Bounded ring buffer of completed spans.
class TraceSink {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  /// The process-wide sink `Span` records into by default. Disabled
  /// until `set_enabled(true)`.
  static TraceSink& global();

  explicit TraceSink(std::size_t capacity = kDefaultCapacity);
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Records one completed span on behalf of the calling thread.
  /// Ignored while the sink is disabled.
  // sysuq-lint-allow(contract-coverage): hot path gated by enabled(); any name/timing is recordable
  void record(std::string_view name, std::uint64_t start_us,
              std::uint64_t dur_us, std::uint32_t depth);

  /// As above with an explicit thread id — for replaying events into a
  /// sink deterministically (exporter goldens, merging foreign traces).
  // sysuq-lint-allow(contract-coverage): hot path gated by enabled(); any name/timing is recordable
  void record(std::string_view name, std::uint64_t start_us,
              std::uint64_t dur_us, std::uint32_t depth, std::uint64_t tid);

  /// Full-control record: every field except `seq` (assigned by the
  /// sink) is taken from `proto`. Used by `Span` to carry trace/span
  /// ids, and by tests replaying pinned events.
  // sysuq-lint-allow(contract-coverage): hot path gated by enabled(); any event is recordable
  void record(const TraceEvent& proto);

  /// Buffered events, oldest first (ascending `seq`).
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// Total events accepted since construction / the last clear.
  [[nodiscard]] std::uint64_t recorded() const;
  /// Events overwritten by newer ones (recorded() - buffered).
  [[nodiscard]] std::uint64_t dropped() const;
  void clear();

  /// Chrome trace_event JSON ("X" complete events, ts/dur in
  /// microseconds); loadable in chrome://tracing and Perfetto.
  ///
  /// Traced events are grouped per trace: each distinct `trace_id`
  /// becomes its own Chrome "process" (pid 2, 3, ... in first-seen
  /// order, named via `process_name` metadata), untraced events stay
  /// under pid 1. Each slice carries `args.{depth,trace,span,parent}`,
  /// and a parent/child pair recorded on *different* threads emits a
  /// flow-event arrow ("s"/"f" pair keyed by the child span id) so the
  /// cross-thread handoff is visible in chrome://tracing.
  [[nodiscard]] std::string to_chrome_json() const;

 private:
  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;  // sysuq-guarded-by(mu_)
  std::size_t capacity_;          // sysuq-thread-confined(init)
  // == events accepted; next slot is seq_ % capacity_.  sysuq-guarded-by(mu_)
  std::uint64_t seq_ = 0;
  std::atomic<bool> enabled_{false};
};

/// RAII scoped timer recording into a sink at destruction. `name` must
/// outlive the span (string literals in practice). Construction against
/// a disabled sink costs one relaxed load; the clock is never read.
///
/// A span joins the calling thread's current `TraceContext`: it adopts
/// the context's trace and parents to the innermost live span, or roots
/// a brand-new trace when no context is active. While live, it is the
/// context (children parent to it); destruction restores the previous
/// context.
class Span {
 public:
  explicit Span(std::string_view name, TraceSink& sink = TraceSink::global()) noexcept;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span();

 private:
  TraceSink* sink_;  // null when the sink was disabled at construction
  std::string_view name_;
  std::uint64_t start_us_ = 0;
  std::uint32_t depth_ = 0;
  std::uint64_t trace_id_ = 0;
  std::uint64_t span_id_ = 0;
  std::uint64_t parent_span_ = 0;
  TraceContext saved_{};  // context to restore at destruction
};

#else  // SYSUQ_OBS_OFF — inline no-ops.

[[nodiscard]] inline std::uint64_t trace_now_us() noexcept { return 0; }

class TraceSink {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;
  static TraceSink& global() {
    static TraceSink s;
    return s;
  }
  explicit TraceSink(std::size_t = kDefaultCapacity) noexcept {}
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;
  void set_enabled(bool) noexcept {}
  [[nodiscard]] bool enabled() const noexcept { return false; }
  void record(std::string_view, std::uint64_t, std::uint64_t,
              std::uint32_t) noexcept {}
  void record(std::string_view, std::uint64_t, std::uint64_t, std::uint32_t,
              std::uint64_t) noexcept {}
  void record(const TraceEvent&) noexcept {}
  [[nodiscard]] std::vector<TraceEvent> snapshot() const { return {}; }
  [[nodiscard]] std::size_t capacity() const noexcept { return 0; }
  [[nodiscard]] std::uint64_t recorded() const noexcept { return 0; }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return 0; }
  void clear() noexcept {}
  [[nodiscard]] std::string to_chrome_json() const { return "{}"; }
};

class Span {
 public:
  explicit Span(std::string_view, TraceSink& = TraceSink::global()) noexcept {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
};

#endif  // SYSUQ_OBS_OFF

}  // namespace sysuq::obs
