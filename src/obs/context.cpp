#include "obs/context.hpp"

#if !defined(SYSUQ_OBS_OFF)

#include <atomic>

namespace sysuq::obs {

namespace {

// The calling thread's position in a trace. Maintained by Span (adopt +
// install on construction, restore on destruction) and by ContextScope
// (explicit cross-thread handoff).
thread_local TraceContext t_context{};

std::atomic<std::uint64_t> g_next_trace{0};
std::atomic<std::uint64_t> g_next_span{0};

}  // namespace

TraceContext current_context() noexcept { return t_context; }

std::uint64_t new_trace_id() noexcept {
  return g_next_trace.fetch_add(1, std::memory_order_relaxed) + 1;
}

std::uint64_t new_span_id() noexcept {
  return g_next_span.fetch_add(1, std::memory_order_relaxed) + 1;
}

namespace detail {

TraceContext exchange_context(const TraceContext& ctx) noexcept {
  const TraceContext old = t_context;
  t_context = ctx;
  return old;
}

}  // namespace detail

}  // namespace sysuq::obs

#endif  // !SYSUQ_OBS_OFF
