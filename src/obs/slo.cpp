#include "obs/slo.hpp"

#if !defined(SYSUQ_OBS_OFF)

#include <charconv>
#include <cstdint>

#include "core/contracts.hpp"

namespace sysuq::obs {

namespace {

// Shortest round-trip decimal, matching the registry exporters so the
// report is byte-deterministic for pinned inputs.
std::string fmt_double(double v) {
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, res.ptr);
}

std::uint64_t sub_clamped(std::uint64_t later, std::uint64_t earlier) {
  return later > earlier ? later - earlier : 0;
}

}  // namespace

double quantile(const HistogramSnapshot& h, double q) {
  SYSUQ_EXPECT(q >= 0.0 && q <= 1.0, "obs::quantile: q must be in [0, 1]");
  if (h.count == 0 || h.bounds.empty() ||
      h.counts.size() != h.bounds.size() + 1) {
    return 0.0;
  }
  const double rank = q * static_cast<double>(h.count);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < h.bounds.size(); ++b) {
    const std::uint64_t in_bucket = h.counts[b];
    if (static_cast<double>(cumulative + in_bucket) >= rank &&
        in_bucket > 0) {
      // Interpolate by the rank's position inside this bucket. The
      // first bucket's lower edge is taken as 0 (latency/count
      // histograms are non-negative by construction).
      const double lo = b == 0 ? 0.0 : h.bounds[b - 1];
      const double hi = h.bounds[b];
      const double into =
          (rank - static_cast<double>(cumulative)) / static_cast<double>(in_bucket);
      const double clamped = into < 0.0 ? 0.0 : (into > 1.0 ? 1.0 : into);
      return lo + clamped * (hi - lo);
    }
    cumulative += in_bucket;
  }
  // Rank falls in the +Inf bucket: no finite upper edge to interpolate
  // against, so clamp to the largest finite bound (Prometheus behavior).
  return h.bounds.back();
}

double quantile(const Histogram& h, double q) {
  HistogramSnapshot snap;
  snap.bounds = h.bounds();
  snap.counts = h.counts();
  snap.count = h.count();
  snap.sum = h.sum();
  return quantile(snap, q);
}

RegistrySnapshot snapshot_delta(const RegistrySnapshot& earlier,
                                const RegistrySnapshot& later) {
  RegistrySnapshot out;
  for (const auto& [name, v] : later.counters) {
    const auto it = earlier.counters.find(name);
    out.counters.emplace(name,
                         it == earlier.counters.end() ? v
                                                      : sub_clamped(v, it->second));
  }
  // Gauges are last-value instruments: the window's value is the later
  // reading, not a difference.
  out.gauges = later.gauges;
  for (const auto& [name, h] : later.histograms) {
    const auto it = earlier.histograms.find(name);
    if (it == earlier.histograms.end() || it->second.bounds != h.bounds) {
      out.histograms.emplace(name, h);
      continue;
    }
    HistogramSnapshot w;
    w.bounds = h.bounds;
    w.counts.resize(h.counts.size());
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      const std::uint64_t before =
          i < it->second.counts.size() ? it->second.counts[i] : 0;
      w.counts[i] = sub_clamped(h.counts[i], before);
    }
    w.count = sub_clamped(h.count, it->second.count);
    const double dsum = h.sum - it->second.sum;
    w.sum = dsum > 0.0 ? dsum : 0.0;
    out.histograms.emplace(name, std::move(w));
  }
  return out;
}

std::string slo_report(const RegistrySnapshot& snap) {
  std::string out = "{";
  bool first = true;
  for (const auto& [name, h] : snap.histograms) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":{\"count\":" + std::to_string(h.count) +
           ",\"sum\":" + fmt_double(h.sum) +
           ",\"p50\":" + fmt_double(quantile(h, 0.50)) +
           ",\"p95\":" + fmt_double(quantile(h, 0.95)) +
           ",\"p99\":" + fmt_double(quantile(h, 0.99)) + "}";
  }
  out += "}";
  return out;
}

std::string slo_report() { return slo_report(Registry::global().snapshot()); }

}  // namespace sysuq::obs

#endif  // !SYSUQ_OBS_OFF
