// sysuq::obs — SLO quantiles and windowed reporting.
//
// Service-level objectives are stated over latency quantiles ("p99
// query latency under 1 ms"), but the registry's histograms only store
// bucket counts. This layer estimates quantiles the Prometheus
// `histogram_quantile` way — find the bucket the target rank falls in,
// then interpolate linearly inside it — and packages the three SLO
// quantiles (p50/p95/p99) of every histogram into a deterministic JSON
// manifest section, `slo_report()`.
//
// Windowing: `Registry::snapshot()` copies every instrument; two
// snapshots subtract into a window with `snapshot_delta`, so a serving
// host can report "quantiles over the last N seconds" instead of
// process-lifetime totals.
//
// With `-DSYSUQ_OBS=OFF` everything degrades to inline stubs (empty
// snapshots, 0-valued quantiles, an empty report object).
#pragma once

#include <string>

#include "obs/registry.hpp"

namespace sysuq::obs {

#if !defined(SYSUQ_OBS_OFF)

/// Estimated `q`-quantile (0 <= q <= 1, contract-checked) of a
/// histogram snapshot, by cumulative-bucket linear interpolation:
/// the bucket containing rank q*count is located, and the value is
/// interpolated between the bucket's lower and upper bounds by the
/// rank's position inside it. Ranks landing in the +Inf bucket clamp
/// to the largest finite bound; an empty histogram yields 0.0.
[[nodiscard]] double quantile(const HistogramSnapshot& h, double q);

/// As above over a live histogram (snapshots it first).
[[nodiscard]] double quantile(const Histogram& h, double q);

/// The window between two snapshots of the same registry: counters and
/// histogram tallies subtract (clamped at zero, so an instrument reset
/// mid-window degrades to "seen this period" rather than underflowing),
/// gauges take the later value, and instruments that appear only in
/// `later` are kept as-is.
// sysuq-lint-allow(contract-coverage): total function — any snapshot
// pair is a valid window; mismatches degrade per the clamping above
[[nodiscard]] RegistrySnapshot snapshot_delta(const RegistrySnapshot& earlier,
                                              const RegistrySnapshot& later);

/// One-line JSON object mapping every histogram to its SLO figures:
/// {"name":{"count":N,"sum":S,"p50":...,"p95":...,"p99":...},...} in
/// name order — the manifest section a serving host exports per model.
[[nodiscard]] std::string slo_report(const RegistrySnapshot& snap);

/// `slo_report` over the global registry's current totals.
[[nodiscard]] std::string slo_report();

#else  // SYSUQ_OBS_OFF — inline no-ops.

[[nodiscard]] inline double quantile(const HistogramSnapshot&, double) {
  return 0.0;
}
[[nodiscard]] inline double quantile(const Histogram&, double) { return 0.0; }
[[nodiscard]] inline RegistrySnapshot snapshot_delta(const RegistrySnapshot&,
                                                     const RegistrySnapshot&) {
  return {};
}
[[nodiscard]] inline std::string slo_report(const RegistrySnapshot&) {
  return "{}";
}
[[nodiscard]] inline std::string slo_report() { return "{}"; }

#endif  // SYSUQ_OBS_OFF

}  // namespace sysuq::obs
