#include "obs/registry.hpp"

#if !defined(SYSUQ_OBS_OFF)

#include <algorithm>
#include <charconv>
#include <cmath>

#include "core/contracts.hpp"

namespace sysuq::obs {

namespace {

// Shortest decimal representation that round-trips (so "1.5" stays
// "1.5", not "1.5000000000000000"), for exporters and goldens.
std::string fmt_double(double v) {
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, res.ptr);
}

bool strictly_increasing_finite(const std::vector<double>& b) {
  if (b.empty()) return false;
  for (std::size_t i = 0; i < b.size(); ++i) {
    if (!std::isfinite(b[i])) return false;
    if (i > 0 && !(b[i] > b[i - 1])) return false;
  }
  return true;
}

std::string prometheus_name(const std::string& name) {
  std::string out = name;
  std::replace(out.begin(), out.end(), '.', '_');
  return out;
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), buckets_(bounds_.size() + 1) {
  SYSUQ_EXPECT(strictly_increasing_finite(bounds_),
               "obs::Histogram: bucket bounds must be non-empty, finite "
               "and strictly increasing");
}

void Histogram::observe(double x) noexcept {
  if (!metrics_enabled()) return;
  // Branchless binary search for the first bound >= x (`le` semantics).
  // The halving step compiles to a conditional move, so bucket choice
  // costs log2(bounds) data-independent steps instead of a linear scan
  // whose branch predictor is at the mercy of the value distribution.
  // NaN compares false everywhere and lands in bucket 0, exactly as the
  // old scan did.
  const double* base = bounds_.data();
  std::size_t n = bounds_.size();
  while (n > 1) {
    const std::size_t half = n / 2;
    base += (base[half - 1] < x) ? half : 0;
    n -= half;
  }
  // n == 0 only when the bounds contract was compiled out; everything
  // then lands in the single (+Inf) bucket.
  const std::size_t b =
      n == 0 ? 0
             : static_cast<std::size_t>(base - bounds_.data()) +
                   ((*base < x) ? 1 : 0);
  buckets_[b].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + x,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> Histogram::counts() const {
  std::vector<std::uint64_t> out(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i)
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  return out;
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

Registry& Registry::global() {
  static Registry r;
  return r;
}

Counter& Registry::counter(std::string_view name) {
  SYSUQ_EXPECT(valid_metric_name(name),
               "obs: metric name '" + std::string(name) +
                   "' must be dot-separated snake_case "
                   "(module.subsystem.name)");
  std::lock_guard<std::mutex> lk(mu_);
  auto it = entries_.find(name);
  // Validate the existing entry before inserting anything, so a kind
  // clash never leaves a half-registered instrument behind.
  SYSUQ_EXPECT(it == entries_.end() || it->second.kind == Kind::kCounter,
               "obs: '" + std::string(name) +
                   "' is already registered as a different instrument kind");
  if (it == entries_.end()) {
    Entry e;
    e.kind = Kind::kCounter;
    e.counter = std::make_unique<Counter>();
    it = entries_.emplace(std::string(name), std::move(e)).first;
  } else if (it->second.kind != Kind::kCounter) {
    // Contracts compiled out / mode off: degrade to a process-wide
    // scratch instrument instead of dereferencing the wrong member.
    static Counter scratch;
    return scratch;
  }
  return *it->second.counter;
}

Gauge& Registry::gauge(std::string_view name) {
  SYSUQ_EXPECT(valid_metric_name(name),
               "obs: metric name '" + std::string(name) +
                   "' must be dot-separated snake_case "
                   "(module.subsystem.name)");
  std::lock_guard<std::mutex> lk(mu_);
  auto it = entries_.find(name);
  SYSUQ_EXPECT(it == entries_.end() || it->second.kind == Kind::kGauge,
               "obs: '" + std::string(name) +
                   "' is already registered as a different instrument kind");
  if (it == entries_.end()) {
    Entry e;
    e.kind = Kind::kGauge;
    e.gauge = std::make_unique<Gauge>();
    it = entries_.emplace(std::string(name), std::move(e)).first;
  } else if (it->second.kind != Kind::kGauge) {
    static Gauge scratch;
    return scratch;
  }
  return *it->second.gauge;
}

Histogram& Registry::histogram(std::string_view name,
                               std::vector<double> upper_bounds) {
  SYSUQ_EXPECT(valid_metric_name(name),
               "obs: metric name '" + std::string(name) +
                   "' must be dot-separated snake_case "
                   "(module.subsystem.name)");
  std::lock_guard<std::mutex> lk(mu_);
  auto it = entries_.find(name);
  SYSUQ_EXPECT(it == entries_.end() || it->second.kind == Kind::kHistogram,
               "obs: '" + std::string(name) +
                   "' is already registered as a different instrument kind");
  SYSUQ_EXPECT(it == entries_.end() ||
                   it->second.kind != Kind::kHistogram ||
                   it->second.histogram->bounds() == upper_bounds,
               "obs: histogram '" + std::string(name) +
                   "' re-registered with different bucket bounds");
  if (it == entries_.end()) {
    Entry e;
    e.kind = Kind::kHistogram;
    e.histogram = std::make_unique<Histogram>(std::move(upper_bounds));
    it = entries_.emplace(std::string(name), std::move(e)).first;
  } else if (it->second.kind != Kind::kHistogram) {
    static Histogram scratch({1.0});
    return scratch;
  }
  return *it->second.histogram;
}

std::size_t Registry::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return entries_.size();
}

RegistrySnapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  RegistrySnapshot snap;
  for (const auto& [name, e] : entries_) {
    switch (e.kind) {
      case Kind::kCounter:
        snap.counters.emplace(name, e.counter->value());
        break;
      case Kind::kGauge:
        snap.gauges.emplace(name, e.gauge->value());
        break;
      case Kind::kHistogram: {
        HistogramSnapshot h;
        h.bounds = e.histogram->bounds();
        h.counts = e.histogram->counts();
        h.count = e.histogram->count();
        h.sum = e.histogram->sum();
        snap.histograms.emplace(name, std::move(h));
        break;
      }
    }
  }
  return snap;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [name, e] : entries_) {
    switch (e.kind) {
      case Kind::kCounter: e.counter->reset(); break;
      case Kind::kGauge: e.gauge->reset(); break;
      case Kind::kHistogram: e.histogram->reset(); break;
    }
  }
}

std::string Registry::to_prometheus() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::string out;
  for (const auto& [name, e] : entries_) {
    const std::string pn = prometheus_name(name);
    switch (e.kind) {
      case Kind::kCounter:
        out += "# TYPE " + pn + " counter\n";
        out += pn + " " + std::to_string(e.counter->value()) + "\n";
        break;
      case Kind::kGauge:
        out += "# TYPE " + pn + " gauge\n";
        out += pn + " " + fmt_double(e.gauge->value()) + "\n";
        break;
      case Kind::kHistogram: {
        const auto& h = *e.histogram;
        const auto counts = h.counts();
        out += "# TYPE " + pn + " histogram\n";
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < h.bounds().size(); ++i) {
          cumulative += counts[i];
          out += pn + "_bucket{le=\"" + fmt_double(h.bounds()[i]) + "\"} " +
                 std::to_string(cumulative) + "\n";
        }
        cumulative += counts.back();
        out += pn + "_bucket{le=\"+Inf\"} " + std::to_string(cumulative) + "\n";
        out += pn + "_sum " + fmt_double(h.sum()) + "\n";
        out += pn + "_count " + std::to_string(h.count()) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string Registry::to_json() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, e] : entries_) {
    if (e.kind != Kind::kCounter) continue;
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":" + std::to_string(e.counter->value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, e] : entries_) {
    if (e.kind != Kind::kGauge) continue;
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":" + fmt_double(e.gauge->value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, e] : entries_) {
    if (e.kind != Kind::kHistogram) continue;
    if (!first) out += ",";
    first = false;
    const auto& h = *e.histogram;
    out += "\"" + name + "\":{\"bounds\":[";
    for (std::size_t i = 0; i < h.bounds().size(); ++i) {
      if (i > 0) out += ",";
      out += fmt_double(h.bounds()[i]);
    }
    out += "],\"counts\":[";
    const auto counts = h.counts();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (i > 0) out += ",";
      out += std::to_string(counts[i]);
    }
    out += "],\"count\":" + std::to_string(h.count()) +
           ",\"sum\":" + fmt_double(h.sum()) + "}";
  }
  out += "}}";
  return out;
}

std::vector<double> seconds_buckets() {
  return {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0};
}

std::vector<double> count_buckets() {
  return {1.0, 3.0, 10.0, 30.0, 100.0, 300.0, 1000.0, 10000.0, 100000.0};
}

}  // namespace sysuq::obs

#endif  // !SYSUQ_OBS_OFF
