// sysuq::obs — trace-context propagation across threads.
//
// A `TraceContext` names a position inside a query's trace: the trace
// it belongs to and the span that any new child span should parent to.
// Every thread carries a current context in thread-local storage; a
// `Span` opened on that thread adopts it (same trace, parented to the
// innermost live span) and installs itself as the context for the
// span's lifetime. A thread with no context starts a fresh trace, so
// each top-level query roots its own trace.
//
// The context does not cross threads by itself — that is the point.
// Code that dispatches work onto other threads (the engine's pool)
// captures `current_context()` before the dispatch and installs it in
// each task with a `ContextScope`, so worker-side spans parent into the
// originating query's trace instead of fragmenting into disconnected
// per-worker roots.
//
// With `-DSYSUQ_OBS=OFF` everything here is an inline no-op; the
// `TraceContext` value type itself stays available so call sites
// compile unchanged.
#pragma once

#include <cstdint>

namespace sysuq::obs {

/// A position inside a trace: which trace, and which span new children
/// should parent to. `trace_id == 0` means "no active trace".
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span = 0;  ///< span id of the innermost live span

  [[nodiscard]] bool active() const noexcept { return trace_id != 0; }
};

#if !defined(SYSUQ_OBS_OFF)

/// The calling thread's current context ({0, 0} when no span is live
/// and no context has been installed).
[[nodiscard]] TraceContext current_context() noexcept;

/// Process-unique ids; never 0 (0 is the "none" sentinel).
[[nodiscard]] std::uint64_t new_trace_id() noexcept;
[[nodiscard]] std::uint64_t new_span_id() noexcept;

namespace detail {
/// Installs `ctx` as the calling thread's context, returning the
/// previous one. Used by `Span` and `ContextScope`; not a public API.
// sysuq-lint-allow(contract-coverage): hot-path TL swap; any context
// value (including the inactive {0,0}) is installable by design
TraceContext exchange_context(const TraceContext& ctx) noexcept;
}  // namespace detail

/// RAII handoff: installs a captured context on the calling thread and
/// restores the previous one on destruction. Intended for the body of
/// pooled tasks:
///
///   const obs::TraceContext ctx = obs::current_context();
///   pool.run(n, [&](std::size_t i) {
///     const obs::ContextScope scope(ctx);   // worker joins the trace
///     ...                                   // spans parent into it
///   });
class ContextScope {
 public:
  explicit ContextScope(const TraceContext& ctx) noexcept
      : saved_(detail::exchange_context(ctx)) {}
  ContextScope(const ContextScope&) = delete;
  ContextScope& operator=(const ContextScope&) = delete;
  ~ContextScope() { (void)detail::exchange_context(saved_); }

 private:
  TraceContext saved_;
};

#else  // SYSUQ_OBS_OFF — inline no-ops.

[[nodiscard]] inline TraceContext current_context() noexcept { return {}; }
[[nodiscard]] inline std::uint64_t new_trace_id() noexcept { return 0; }
[[nodiscard]] inline std::uint64_t new_span_id() noexcept { return 0; }

class ContextScope {
 public:
  explicit ContextScope(const TraceContext&) noexcept {}
  ContextScope(const ContextScope&) = delete;
  ContextScope& operator=(const ContextScope&) = delete;
};

#endif  // SYSUQ_OBS_OFF

}  // namespace sysuq::obs
