// sysuq::obs — process-wide metrics for the inference stack.
//
// The paper's cybernetic reading (Fig. 1) is that a regulator can only
// regulate what it observes about the system under its control; this
// layer applies the same standard to the library itself. A `Registry`
// holds named instruments — monotonic `Counter`s, last-value `Gauge`s
// and fixed-bucket `Histogram`s — that the hot paths update with single
// relaxed atomic operations (no lock on the increment path; the registry
// mutex is taken only when an instrument is first registered or when an
// exporter snapshots).
//
// Naming contract: instrument names follow `module.subsystem.name` —
// lowercase snake-case segments joined by dots, at least two segments
// (e.g. `bayesnet.engine.query_seconds`). Names are contract-checked at
// registration and linted at the call site (`sysuq_analyze`, rule
// `obs-naming`). The Prometheus exporter rewrites dots to underscores.
//
// Build modes: with `-DSYSUQ_OBS=OFF` (CMake) this header swaps every
// class for an inline no-op — instruments never register, exporters
// return empty documents, and call sites compile unchanged with zero
// recording cost. At runtime, `set_metrics_enabled(false)` suspends
// recording (a relaxed load + branch per update) so batch loops can
// window or A/B their own overhead.
//
// Thread safety: every member function of every class here is safe to
// call concurrently. Instrument references returned by the registry are
// stable for the registry's lifetime.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#if !defined(SYSUQ_OBS_OFF)
#include <chrono>
#include <memory>
#include <mutex>
#endif

namespace sysuq::obs {

/// Point-in-time copy of one histogram's state. Plain data — available
/// in both build modes so snapshot-consuming code compiles unchanged.
struct HistogramSnapshot {
  std::vector<double> bounds;          ///< upper bounds, ascending
  std::vector<std::uint64_t> counts;   ///< bounds.size() + 1 (+Inf last)
  std::uint64_t count = 0;
  double sum = 0.0;
};

/// Point-in-time copy of a whole registry, keyed by instrument name.
/// Produced by `Registry::snapshot()`; two snapshots subtract into a
/// window via `snapshot_delta` (obs/slo.hpp).
struct RegistrySnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
};

/// True when `name` follows the `module.subsystem.name` style: two or
/// more dot-separated segments, each matching [a-z][a-z0-9_]*.
[[nodiscard]] constexpr bool valid_metric_name(std::string_view name) noexcept {
  bool seen_dot = false;
  bool segment_start = true;
  for (const char c : name) {
    if (segment_start) {
      if (c < 'a' || c > 'z') return false;
      segment_start = false;
      continue;
    }
    if (c == '.') {
      seen_dot = true;
      segment_start = true;
      continue;
    }
    const bool ok =
        (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_';
    if (!ok) return false;
  }
  return seen_dot && !segment_start && !name.empty();
}

#if !defined(SYSUQ_OBS_OFF)

namespace detail {
/// Process-wide recording switch; relaxed because instrument updates are
/// statistics, not synchronization.
inline std::atomic<bool> g_metrics_enabled{true};
}  // namespace detail

/// True when instrument updates are recorded (default). Exporters and
/// `value()` readers work regardless of the switch.
[[nodiscard]] inline bool metrics_enabled() noexcept {
  return detail::g_metrics_enabled.load(std::memory_order_relaxed);
}

/// Suspends / resumes recording process-wide. Intended for overhead
/// A/B runs and for hosts that want to window their own collection; not
/// a substitute for the compile-time `SYSUQ_OBS=OFF` mode.
inline void set_metrics_enabled(bool on) noexcept {
  detail::g_metrics_enabled.store(on, std::memory_order_relaxed);
}

/// Monotonic event count. Increment is one relaxed atomic add.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void inc(std::uint64_t n = 1) noexcept {
    if (metrics_enabled()) v_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-value instrument (e.g. cache size, effective sample size).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(double v) noexcept {
    if (metrics_enabled()) v_.store(v, std::memory_order_relaxed);
  }
  void add(double d) noexcept {
    if (!metrics_enabled()) return;
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram with Prometheus `le` semantics: a sample lands
/// in the first bucket whose upper bound is >= the value; samples above
/// every bound land in the implicit +Inf bucket. Observation is a
/// branchless binary search over the sorted bounds plus three relaxed
/// atomic updates.
class Histogram {
 public:
  /// `upper_bounds` must be non-empty, finite, and strictly increasing
  /// (contract-checked).
  explicit Histogram(std::vector<double> upper_bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void observe(double x) noexcept;

  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }
  /// Per-bucket counts; the last entry is the +Inf bucket.
  [[nodiscard]] std::vector<std::uint64_t> counts() const;
  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  void reset() noexcept;

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Named-instrument registry. `global()` is the process-wide instance
/// every library module registers into; independent instances exist only
/// for tests and embedding hosts.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  static Registry& global();

  /// Returns the counter registered under `name`, creating it on first
  /// use. Contract-checked: `name` must satisfy `valid_metric_name` and
  /// must not already name an instrument of a different kind.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// As above; re-registration must repeat the identical bucket bounds.
  Histogram& histogram(std::string_view name, std::vector<double> upper_bounds);

  [[nodiscard]] std::size_t size() const;

  /// Point-in-time copy of every instrument, for windowed collection:
  /// snapshot before and after a workload, subtract with
  /// `snapshot_delta` (obs/slo.hpp), and report quantiles over the
  /// window alone.
  [[nodiscard]] RegistrySnapshot snapshot() const;

  /// Zeroes every instrument, keeping all registrations.
  void reset();

  /// Prometheus text exposition (names with dots rewritten to
  /// underscores), instruments in name order.
  [[nodiscard]] std::string to_prometheus() const;

  /// One-line JSON document:
  /// {"counters":{...},"gauges":{...},"histograms":{...}} with
  /// instruments in name order — the run-manifest format.
  [[nodiscard]] std::string to_json() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind = Kind::kCounter;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry, std::less<>> entries_;  // sysuq-guarded-by(mu_)
};

/// RAII scoped timer: observes the elapsed wall seconds into `h` at
/// destruction. When recording is disabled at construction the clock is
/// never read.
class HistogramTimer {
 public:
  explicit HistogramTimer(Histogram& h) noexcept
      : h_(metrics_enabled() ? &h : nullptr) {
    if (h_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  HistogramTimer(const HistogramTimer&) = delete;
  HistogramTimer& operator=(const HistogramTimer&) = delete;
  ~HistogramTimer() {
    if (h_ != nullptr) {
      h_->observe(std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start_)
                      .count());
    }
  }

 private:
  Histogram* h_;
  std::chrono::steady_clock::time_point start_{};
};

/// Log-spaced latency buckets, 1 microsecond .. 10 seconds.
[[nodiscard]] std::vector<double> seconds_buckets();

/// Log-spaced magnitude buckets, 1 .. 100000 (iteration counts, widths).
[[nodiscard]] std::vector<double> count_buckets();

#else  // SYSUQ_OBS_OFF — every class is an inline no-op.

[[nodiscard]] inline bool metrics_enabled() noexcept { return false; }
inline void set_metrics_enabled(bool) noexcept {}

class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;
  void inc(std::uint64_t = 1) noexcept {}
  [[nodiscard]] std::uint64_t value() const noexcept { return 0; }
  void reset() noexcept {}
};

class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;
  void set(double) noexcept {}
  void add(double) noexcept {}
  [[nodiscard]] double value() const noexcept { return 0.0; }
  void reset() noexcept {}
};

class Histogram {
 public:
  explicit Histogram(std::vector<double> = {}) noexcept {}
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;
  void observe(double) noexcept {}
  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    static const std::vector<double> kEmpty;
    return kEmpty;
  }
  [[nodiscard]] std::vector<std::uint64_t> counts() const { return {}; }
  [[nodiscard]] std::uint64_t count() const noexcept { return 0; }
  [[nodiscard]] double sum() const noexcept { return 0.0; }
  void reset() noexcept {}
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;
  static Registry& global() {
    static Registry r;
    return r;
  }
  Counter& counter(std::string_view) {
    static Counter c;
    return c;
  }
  Gauge& gauge(std::string_view) {
    static Gauge g;
    return g;
  }
  Histogram& histogram(std::string_view, std::vector<double> = {}) {
    static Histogram h;
    return h;
  }
  [[nodiscard]] std::size_t size() const { return 0; }
  [[nodiscard]] RegistrySnapshot snapshot() const { return {}; }
  void reset() {}
  [[nodiscard]] std::string to_prometheus() const { return {}; }
  [[nodiscard]] std::string to_json() const { return "{}"; }
};

class HistogramTimer {
 public:
  explicit HistogramTimer(Histogram&) noexcept {}
  HistogramTimer(const HistogramTimer&) = delete;
  HistogramTimer& operator=(const HistogramTimer&) = delete;
};

[[nodiscard]] inline std::vector<double> seconds_buckets() { return {}; }
[[nodiscard]] inline std::vector<double> count_buckets() { return {}; }

#endif  // SYSUQ_OBS_OFF

}  // namespace sysuq::obs
