#include "obs/trace.hpp"

#if !defined(SYSUQ_OBS_OFF)

#include <chrono>
#include <functional>
#include <thread>

#include "core/contracts.hpp"

namespace sysuq::obs {

namespace {

// Nesting depth of the calling thread's live spans.
thread_local std::uint32_t t_span_depth = 0;

std::uint64_t current_tid() {
  return std::hash<std::thread::id>{}(std::this_thread::get_id());
}

// Minimal JSON string escaping; span names are code-controlled literals,
// so only the characters that would break the document are handled.
void append_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) >= 0x20) out += c;
    }
  }
}

}  // namespace

std::uint64_t trace_now_us() noexcept {
  static const auto epoch = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

TraceSink& TraceSink::global() {
  static TraceSink sink;
  return sink;
}

TraceSink::TraceSink(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  SYSUQ_EXPECT(capacity != 0, "obs::TraceSink: zero capacity");
  ring_.resize(capacity_);
}

void TraceSink::record(std::string_view name, std::uint64_t start_us,
                       std::uint64_t dur_us, std::uint32_t depth) {
  record(name, start_us, dur_us, depth, current_tid());
}

void TraceSink::record(std::string_view name, std::uint64_t start_us,
                       std::uint64_t dur_us, std::uint32_t depth,
                       std::uint64_t tid) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lk(mu_);
  TraceEvent& slot = ring_[seq_ % capacity_];
  slot.name.assign(name);
  slot.start_us = start_us;
  slot.dur_us = dur_us;
  slot.depth = depth;
  slot.tid = tid;
  slot.seq = seq_;
  ++seq_;
}

std::vector<TraceEvent> TraceSink::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  const std::uint64_t buffered = seq_ < capacity_ ? seq_ : capacity_;
  std::vector<TraceEvent> out;
  out.reserve(buffered);
  // Oldest surviving event first: seq_ - buffered .. seq_ - 1.
  for (std::uint64_t s = seq_ - buffered; s < seq_; ++s)
    out.push_back(ring_[s % capacity_]);
  return out;
}

std::uint64_t TraceSink::recorded() const {
  std::lock_guard<std::mutex> lk(mu_);
  return seq_;
}

std::uint64_t TraceSink::dropped() const {
  std::lock_guard<std::mutex> lk(mu_);
  return seq_ > capacity_ ? seq_ - capacity_ : 0;
}

void TraceSink::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& e : ring_) e = TraceEvent{};
  seq_ = 0;
}

std::string TraceSink::to_chrome_json() const {
  const auto events = snapshot();
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const auto& e : events) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"";
    append_escaped(out, e.name);
    out += "\",\"cat\":\"sysuq\",\"ph\":\"X\",\"pid\":1,\"tid\":" +
           std::to_string(e.tid) + ",\"ts\":" + std::to_string(e.start_us) +
           ",\"dur\":" + std::to_string(e.dur_us) +
           ",\"args\":{\"depth\":" + std::to_string(e.depth) + "}}";
  }
  out += "]}";
  return out;
}

Span::Span(std::string_view name, TraceSink& sink) noexcept
    : sink_(sink.enabled() ? &sink : nullptr), name_(name) {
  if (sink_ != nullptr) {
    depth_ = ++t_span_depth;
    start_us_ = trace_now_us();
  }
}

Span::~Span() {
  if (sink_ != nullptr) {
    const std::uint64_t end_us = trace_now_us();
    sink_->record(name_, start_us_, end_us - start_us_, depth_);
    --t_span_depth;
  }
}

}  // namespace sysuq::obs

#endif  // !SYSUQ_OBS_OFF
