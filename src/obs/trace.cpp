#include "obs/trace.hpp"

#if !defined(SYSUQ_OBS_OFF)

#include <chrono>
#include <functional>
#include <thread>

#include "core/contracts.hpp"

namespace sysuq::obs {

namespace {

// Nesting depth of the calling thread's live spans.
thread_local std::uint32_t t_span_depth = 0;

std::uint64_t current_tid() {
  return std::hash<std::thread::id>{}(std::this_thread::get_id());
}

// Minimal JSON string escaping; span names are code-controlled literals,
// so only the characters that would break the document are handled.
void append_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) >= 0x20) out += c;
    }
  }
}

}  // namespace

std::uint64_t trace_now_us() noexcept {
  static const auto epoch = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

TraceSink& TraceSink::global() {
  static TraceSink sink;
  return sink;
}

TraceSink::TraceSink(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  SYSUQ_EXPECT(capacity != 0, "obs::TraceSink: zero capacity");
  ring_.resize(capacity_);
}

void TraceSink::record(std::string_view name, std::uint64_t start_us,
                       std::uint64_t dur_us, std::uint32_t depth) {
  record(name, start_us, dur_us, depth, current_tid());
}

void TraceSink::record(std::string_view name, std::uint64_t start_us,
                       std::uint64_t dur_us, std::uint32_t depth,
                       std::uint64_t tid) {
  if (!enabled()) return;  // skip building the event, not just storing it
  TraceEvent e;
  e.name.assign(name);
  e.start_us = start_us;
  e.dur_us = dur_us;
  e.depth = depth;
  e.tid = tid;
  record(e);
}

void TraceSink::record(const TraceEvent& proto) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lk(mu_);
  TraceEvent& slot = ring_[seq_ % capacity_];
  slot = proto;
  slot.seq = seq_;
  ++seq_;
}

std::vector<TraceEvent> TraceSink::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  const std::uint64_t buffered = seq_ < capacity_ ? seq_ : capacity_;
  std::vector<TraceEvent> out;
  out.reserve(buffered);
  // Oldest surviving event first: seq_ - buffered .. seq_ - 1.
  for (std::uint64_t s = seq_ - buffered; s < seq_; ++s)
    out.push_back(ring_[s % capacity_]);
  return out;
}

std::uint64_t TraceSink::recorded() const {
  std::lock_guard<std::mutex> lk(mu_);
  return seq_;
}

std::uint64_t TraceSink::dropped() const {
  std::lock_guard<std::mutex> lk(mu_);
  return seq_ > capacity_ ? seq_ - capacity_ : 0;
}

void TraceSink::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& e : ring_) e = TraceEvent{};
  seq_ = 0;
}

std::string TraceSink::to_chrome_json() const {
  const auto events = snapshot();

  // Per-trace grouping: each distinct trace_id becomes a Chrome
  // "process" (pid 2, 3, ... in order of first appearance); untraced
  // events (trace_id == 0) stay under pid 1.
  std::vector<std::uint64_t> trace_order;
  const auto pid_of = [&](std::uint64_t trace_id) -> std::uint64_t {
    if (trace_id == 0) return 1;
    for (std::size_t i = 0; i < trace_order.size(); ++i)
      if (trace_order[i] == trace_id) return 2 + i;
    trace_order.push_back(trace_id);
    return 1 + trace_order.size();
  };
  bool any_untraced = false;
  for (const auto& e : events) {
    if (e.trace_id == 0) {
      any_untraced = true;
    } else {
      (void)pid_of(e.trace_id);
    }
  }

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto sep = [&] {
    if (!first) out += ",";
    first = false;
  };

  // Process-name metadata first, so viewers label the trace groups.
  if (any_untraced) {
    sep();
    out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
           "\"args\":{\"name\":\"untraced\"}}";
  }
  for (std::size_t i = 0; i < trace_order.size(); ++i) {
    sep();
    out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" +
           std::to_string(2 + i) + ",\"args\":{\"name\":\"trace " +
           std::to_string(trace_order[i]) + "\"}}";
  }

  // Complete ("X") slices in record order.
  for (const auto& e : events) {
    sep();
    out += "{\"name\":\"";
    append_escaped(out, e.name);
    out += "\",\"cat\":\"sysuq\",\"ph\":\"X\",\"pid\":" +
           std::to_string(pid_of(e.trace_id)) +
           ",\"tid\":" + std::to_string(e.tid) +
           ",\"ts\":" + std::to_string(e.start_us) +
           ",\"dur\":" + std::to_string(e.dur_us) +
           ",\"args\":{\"depth\":" + std::to_string(e.depth) +
           ",\"trace\":" + std::to_string(e.trace_id) +
           ",\"span\":" + std::to_string(e.span_id) +
           ",\"parent\":" + std::to_string(e.parent_span) + "}}";
  }

  // Flow arrows for parent/child pairs that crossed threads (the pool
  // handoff): an "s"/"f" pair keyed by the child's span id, anchored at
  // the two slices' start timestamps.
  for (const auto& e : events) {
    if (e.parent_span == 0) continue;
    const TraceEvent* parent = nullptr;
    for (const auto& p : events) {
      if (p.span_id == e.parent_span) {
        parent = &p;
        break;
      }
    }
    if (parent == nullptr || parent->tid == e.tid) continue;
    const std::string pid = std::to_string(pid_of(e.trace_id));
    const std::string id = std::to_string(e.span_id);
    sep();
    out += "{\"name\":\"handoff\",\"cat\":\"sysuq\",\"ph\":\"s\",\"id\":" +
           id + ",\"pid\":" + pid + ",\"tid\":" + std::to_string(parent->tid) +
           ",\"ts\":" + std::to_string(parent->start_us) + "}";
    sep();
    out += "{\"name\":\"handoff\",\"cat\":\"sysuq\",\"ph\":\"f\",\"bp\":\"e\","
           "\"id\":" +
           id + ",\"pid\":" + pid + ",\"tid\":" + std::to_string(e.tid) +
           ",\"ts\":" + std::to_string(e.start_us) + "}";
  }

  out += "]}";
  return out;
}

Span::Span(std::string_view name, TraceSink& sink) noexcept
    : sink_(sink.enabled() ? &sink : nullptr), name_(name) {
  if (sink_ != nullptr) {
    depth_ = ++t_span_depth;
    // Join the thread's current trace (parenting to its innermost live
    // span) or root a new one, then become the context for children.
    const TraceContext cur = current_context();
    trace_id_ = cur.active() ? cur.trace_id : new_trace_id();
    parent_span_ = cur.parent_span;
    span_id_ = new_span_id();
    saved_ = detail::exchange_context(TraceContext{trace_id_, span_id_});
    start_us_ = trace_now_us();
  }
}

Span::~Span() {
  if (sink_ != nullptr) {
    const std::uint64_t end_us = trace_now_us();
    TraceEvent e;
    e.name.assign(name_);
    e.start_us = start_us_;
    e.dur_us = end_us - start_us_;
    e.depth = depth_;
    e.tid = current_tid();
    e.trace_id = trace_id_;
    e.span_id = span_id_;
    e.parent_span = parent_span_;
    sink_->record(e);
    (void)detail::exchange_context(saved_);
    --t_span_depth;
  }
}

}  // namespace sysuq::obs

#endif  // !SYSUQ_OBS_OFF
