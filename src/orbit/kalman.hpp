// A 2-D constant-velocity Kalman filter for planet tracking.
//
// The filter is the continuous-state face of the paper's uncertainty
// story: its covariance is the *epistemic* state uncertainty (shrinks
// with observations), the measurement noise is *aleatory*, and the
// normalized innovation squared (NIS) is the per-observation surprise
// statistic — when the world leaves the model class (third planet,
// manoeuvre), the NIS leaves its chi-square band, which is exactly the
// Sec. III.C detection trigger in filter form.
#pragma once

#include <array>
#include <cstddef>

#include "orbit/vec2.hpp"

namespace sysuq::orbit {

/// State: [x, y, vx, vy]; measurement: [x, y].
class KalmanFilter2D {
 public:
  /// `process_noise` — white-acceleration intensity q (per axis);
  /// `measurement_noise` — position measurement stddev r;
  /// `initial_pos_var` / `initial_vel_var` — diagonal prior covariance.
  KalmanFilter2D(double process_noise, double measurement_noise,
                 double initial_pos_var, double initial_vel_var);

  /// Initializes the state estimate.
  void initialize(Vec2 position, Vec2 velocity);

  /// Time update over dt (constant-velocity transition, white-accel Q).
  void predict(double dt);

  /// Measurement update; returns the normalized innovation squared
  /// (NIS = nu^T S^{-1} nu, chi-square with 2 dof under the model).
  double update(Vec2 measured_position);

  [[nodiscard]] Vec2 position() const { return {ax_.pos, ay_.pos}; }
  [[nodiscard]] Vec2 velocity() const { return {ax_.vel, ay_.vel}; }
  /// Trace of the position block of the covariance — the scalar
  /// epistemic state uncertainty.
  [[nodiscard]] double position_variance() const { return ax_.p00 + ay_.p00; }
  [[nodiscard]] double velocity_variance() const { return ax_.p11 + ay_.p11; }

 private:
  // The x and y axes decouple under the constant-velocity model, so the
  // filter is two identical (position, velocity) blocks.
  struct Axis {
    double pos = 0.0, vel = 0.0;
    double p00 = 0.0, p01 = 0.0, p11 = 0.0;
  };
  double q_, r_;
  Axis ax_, ay_;

  void predict_axis(Axis& a, double dt) const;
  /// Returns the squared innovation over the innovation variance.
  double update_axis(Axis& a, double z) const;
};

}  // namespace sysuq::orbit
