// Minimal 2-D vector algebra for the two-planet universe.
#pragma once

#include <cmath>

namespace sysuq::orbit {

/// A 2-D vector with value semantics.
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
  constexpr Vec2 operator/(double s) const { return {x / s, y / s}; }
  constexpr Vec2& operator+=(Vec2 o) {
    x += o.x;
    y += o.y;
    return *this;
  }
  constexpr Vec2& operator-=(Vec2 o) {
    x -= o.x;
    y -= o.y;
    return *this;
  }
  constexpr Vec2 operator-() const { return {-x, -y}; }
  constexpr bool operator==(const Vec2&) const = default;

  /// Dot product.
  [[nodiscard]] constexpr double dot(Vec2 o) const { return x * o.x + y * o.y; }
  /// Squared Euclidean norm.
  [[nodiscard]] constexpr double norm2() const { return x * x + y * y; }
  /// Euclidean norm.
  [[nodiscard]] double norm() const { return std::sqrt(norm2()); }
  /// Distance to another point.
  [[nodiscard]] double distance(Vec2 o) const { return (*this - o).norm(); }
};

constexpr Vec2 operator*(double s, Vec2 v) { return v * s; }

}  // namespace sysuq::orbit
