#include "orbit/kalman.hpp"

#include <cmath>
#include <stdexcept>

#include "core/contracts.hpp"
#include "obs/registry.hpp"

namespace sysuq::orbit {

KalmanFilter2D::KalmanFilter2D(double process_noise, double measurement_noise,
                               double initial_pos_var, double initial_vel_var)
    : q_(process_noise), r_(measurement_noise) {
  SYSUQ_EXPECT(process_noise > 0.0 && measurement_noise > 0.0,
               "KalmanFilter2D: noise parameters must be > 0");
  SYSUQ_EXPECT(initial_pos_var > 0.0 && initial_vel_var > 0.0,
               "KalmanFilter2D: prior variances must be > 0");
  ax_.p00 = ay_.p00 = initial_pos_var;
  ax_.p11 = ay_.p11 = initial_vel_var;
}

void KalmanFilter2D::initialize(Vec2 position, Vec2 velocity) {
  SYSUQ_EXPECT(std::isfinite(position.x) && std::isfinite(position.y) &&
                   std::isfinite(velocity.x) && std::isfinite(velocity.y),
               "KalmanFilter2D::initialize: non-finite state");
  ax_.pos = position.x;
  ay_.pos = position.y;
  ax_.vel = velocity.x;
  ay_.vel = velocity.y;
}

void KalmanFilter2D::predict_axis(Axis& a, double dt) const {
  // x' = F x with F = [[1, dt], [0, 1]]; P' = F P F^T + Q with the
  // white-acceleration Q = q * [[dt^3/3, dt^2/2], [dt^2/2, dt]].
  a.pos += a.vel * dt;
  const double p00 = a.p00 + dt * (2.0 * a.p01 + dt * a.p11);
  const double p01 = a.p01 + dt * a.p11;
  a.p00 = p00 + q_ * dt * dt * dt / 3.0;
  a.p01 = p01 + q_ * dt * dt / 2.0;
  a.p11 = a.p11 + q_ * dt;
}

double KalmanFilter2D::update_axis(Axis& a, double z) const {
  const double innovation = z - a.pos;
  const double s = a.p00 + r_ * r_;
  const double k0 = a.p00 / s;
  const double k1 = a.p01 / s;
  a.pos += k0 * innovation;
  a.vel += k1 * innovation;
  const double p00 = (1.0 - k0) * a.p00;
  const double p01 = (1.0 - k0) * a.p01;
  const double p11 = a.p11 - k1 * a.p01;
  a.p00 = p00;
  a.p01 = p01;
  a.p11 = p11;
  return innovation * innovation / s;
}

void KalmanFilter2D::predict(double dt) {
  SYSUQ_EXPECT(dt > 0.0, "KalmanFilter2D: dt <= 0");
  static obs::Counter& predicts =
      obs::Registry::global().counter("orbit.kalman.predicts");
  predicts.inc();
  predict_axis(ax_, dt);
  predict_axis(ay_, dt);
}

double KalmanFilter2D::update(Vec2 measured_position) {
  static obs::Counter& updates =
      obs::Registry::global().counter("orbit.kalman.updates");
  updates.inc();
  // Axes are independent: the 2-dof NIS is the sum of the per-axis terms.
  return update_axis(ax_, measured_position.x) +
         update_axis(ay_, measured_position.y);
}

}  // namespace sysuq::orbit
