// N-body gravitational dynamics: the *physical system* of the paper's
// Fig. 2 example. Ground truth is simulated here; "model A" (deterministic
// Newtonian ephemeris) and "model B" (frequentist occupancy) are formal
// systems built on top in two_planet.hpp.
#pragma once

#include <cstddef>
#include <vector>

#include "orbit/vec2.hpp"

namespace sysuq::orbit {

/// A point body (or, with oblateness > 0, a heterogeneous body whose
/// uneven mass distribution perturbs the inverse-square law — the paper's
/// Sec. III.B epistemic-gap device).
struct Body {
  double mass = 1.0;
  Vec2 position;
  Vec2 velocity;
  /// Dimensionless multipole strength of the body's mass inhomogeneity
  /// (J2-like). 0 = ideal point mass; the acceleration it induces gains a
  /// 1/r^4 correction term scaled by this coefficient.
  double oblateness = 0.0;
};

/// State of the universe: bodies plus simulation time.
struct SystemState {
  std::vector<Body> bodies;
  double time = 0.0;
};

/// Gravitational parameters for the simulation.
struct GravityParams {
  double g = 1.0;          ///< gravitational constant (natural units)
  double softening = 0.0;  ///< Plummer softening length (0 = none)
};

/// Acceleration on body `i` from all other bodies: Newtonian inverse
/// square plus the oblateness multipole correction of each attractor.
[[nodiscard]] Vec2 acceleration(const std::vector<Body>& bodies, std::size_t i,
                                const GravityParams& params);

/// One velocity-Verlet step of size dt (symplectic; preserves energy over
/// long horizons — the ground-truth integrator).
void verlet_step(SystemState& state, double dt, const GravityParams& params);

/// One classical RK4 step of size dt (higher short-term accuracy, secular
/// energy drift — used for model-A ephemerides).
void rk4_step(SystemState& state, double dt, const GravityParams& params);

/// Advances `steps` Verlet steps.
void simulate(SystemState& state, double dt, std::size_t steps,
              const GravityParams& params);

/// Total mechanical energy (kinetic + pairwise point-mass potential).
/// With oblateness the potential term is approximate (point-mass part
/// only); used for conservation diagnostics of point-mass systems.
[[nodiscard]] double total_energy(const SystemState& state,
                                  const GravityParams& params);

/// Total linear momentum.
// sysuq-lint-allow(contract-coverage): linear sum, total over any system state
[[nodiscard]] Vec2 total_momentum(const SystemState& state);

/// Center of mass.
[[nodiscard]] Vec2 center_of_mass(const SystemState& state);

/// Builds a two-body system in a circular orbit about the barycenter with
/// the given masses and separation (zero total momentum).
[[nodiscard]] SystemState make_circular_binary(double m1, double m2,
                                               double separation,
                                               const GravityParams& params);

/// Orbital period of the circular binary (Kepler's third law).
[[nodiscard]] double circular_binary_period(double m1, double m2,
                                            double separation,
                                            const GravityParams& params);

}  // namespace sysuq::orbit
