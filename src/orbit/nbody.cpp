#include "orbit/nbody.hpp"

#include <cmath>
#include <stdexcept>
#include "core/contracts.hpp"

namespace sysuq::orbit {

Vec2 acceleration(const std::vector<Body>& bodies, std::size_t i,
                  const GravityParams& params) {
  if (i >= bodies.size()) throw std::out_of_range("acceleration: body index");
  Vec2 a{};
  const Vec2 pi = bodies[i].position;
  for (std::size_t j = 0; j < bodies.size(); ++j) {
    if (j == i) continue;
    const Vec2 d = bodies[j].position - pi;
    const double r2 = d.norm2() + params.softening * params.softening;
    const double r = std::sqrt(r2);
    if (r2 <= 0.0) throw std::domain_error("acceleration: coincident bodies");
    // Point-mass term GM/r^2, plus the attractor's multipole correction
    // ~ GM * J2 / r^4 (heterogeneous mass distribution; see Sec. III.B).
    const double inv_r3 = 1.0 / (r2 * r);
    double scale = params.g * bodies[j].mass * inv_r3;
    if (bodies[j].oblateness != 0.0) {  // sysuq-lint-allow(float-eq): exact default disables the term
      scale *= 1.0 + bodies[j].oblateness / r2;
    }
    a += d * scale;
  }
  return a;
}

void verlet_step(SystemState& state, double dt, const GravityParams& params) {
  const std::size_t n = state.bodies.size();
  std::vector<Vec2> acc(n);
  for (std::size_t i = 0; i < n; ++i) acc[i] = acceleration(state.bodies, i, params);
  for (std::size_t i = 0; i < n; ++i) {
    state.bodies[i].velocity += acc[i] * (0.5 * dt);
    state.bodies[i].position += state.bodies[i].velocity * dt;
  }
  for (std::size_t i = 0; i < n; ++i) {
    state.bodies[i].velocity += acceleration(state.bodies, i, params) * (0.5 * dt);
  }
  state.time += dt;
}

namespace {

struct Derivative {
  std::vector<Vec2> dpos;
  std::vector<Vec2> dvel;
};

Derivative derive(const SystemState& base, const Derivative* d, double dt,
                  const GravityParams& params) {
  SystemState s = base;
  if (d != nullptr) {
    for (std::size_t i = 0; i < s.bodies.size(); ++i) {
      s.bodies[i].position += d->dpos[i] * dt;
      s.bodies[i].velocity += d->dvel[i] * dt;
    }
  }
  Derivative out;
  out.dpos.resize(s.bodies.size());
  out.dvel.resize(s.bodies.size());
  for (std::size_t i = 0; i < s.bodies.size(); ++i) {
    out.dpos[i] = s.bodies[i].velocity;
    out.dvel[i] = acceleration(s.bodies, i, params);
  }
  return out;
}

}  // namespace

void rk4_step(SystemState& state, double dt, const GravityParams& params) {
  const auto k1 = derive(state, nullptr, 0.0, params);
  const auto k2 = derive(state, &k1, dt * 0.5, params);
  const auto k3 = derive(state, &k2, dt * 0.5, params);
  const auto k4 = derive(state, &k3, dt, params);
  for (std::size_t i = 0; i < state.bodies.size(); ++i) {
    state.bodies[i].position +=
        (k1.dpos[i] + (k2.dpos[i] + k3.dpos[i]) * 2.0 + k4.dpos[i]) * (dt / 6.0);
    state.bodies[i].velocity +=
        (k1.dvel[i] + (k2.dvel[i] + k3.dvel[i]) * 2.0 + k4.dvel[i]) * (dt / 6.0);
  }
  state.time += dt;
}

void simulate(SystemState& state, double dt, std::size_t steps,
              const GravityParams& params) {
  for (std::size_t s = 0; s < steps; ++s) verlet_step(state, dt, params);
}

double total_energy(const SystemState& state, const GravityParams& params) {
  double e = 0.0;
  const auto& b = state.bodies;
  for (std::size_t i = 0; i < b.size(); ++i) {
    e += 0.5 * b[i].mass * b[i].velocity.norm2();
    for (std::size_t j = i + 1; j < b.size(); ++j) {
      const double r = std::sqrt(b[i].position.distance(b[j].position) *
                                     b[i].position.distance(b[j].position) +
                                 params.softening * params.softening);
      e -= params.g * b[i].mass * b[j].mass / r;
    }
  }
  return e;
}

Vec2 total_momentum(const SystemState& state) {
  Vec2 p{};
  for (const auto& b : state.bodies) p += b.velocity * b.mass;
  return p;
}

Vec2 center_of_mass(const SystemState& state) {
  Vec2 c{};
  double m = 0.0;
  for (const auto& b : state.bodies) {
    c += b.position * b.mass;
    m += b.mass;
  }
  if (!(m > 0.0)) throw std::domain_error("center_of_mass: zero total mass");
  return c / m;
}

SystemState make_circular_binary(double m1, double m2, double separation,
                                 const GravityParams& params) {
  if (!(m1 > 0.0) || !(m2 > 0.0) || !(separation > 0.0))
    throw contracts::ContractViolation("make_circular_binary: bad parameters");
  const double mtot = m1 + m2;
  // Barycentric radii.
  const double r1 = separation * m2 / mtot;
  const double r2 = separation * m1 / mtot;
  // Circular orbital speed from Kepler: omega^2 = G * mtot / separation^3.
  const double omega = std::sqrt(params.g * mtot / (separation * separation *
                                                    separation));
  SystemState s;
  s.bodies.push_back(Body{m1, {-r1, 0.0}, {0.0, -omega * r1}, 0.0});
  s.bodies.push_back(Body{m2, {r2, 0.0}, {0.0, omega * r2}, 0.0});
  return s;
}

double circular_binary_period(double m1, double m2, double separation,
                              const GravityParams& params) {
  SYSUQ_EXPECT(m1 + m2 > 0.0 && separation > 0.0 && params.g > 0.0,
               "circular_binary_period: require positive mass, separation, G");
  const double omega = std::sqrt(params.g * (m1 + m2) /
                                 (separation * separation * separation));
  return 2.0 * M_PI / omega;
}

}  // namespace sysuq::orbit
