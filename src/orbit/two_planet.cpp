#include "orbit/two_planet.hpp"

#include <algorithm>
#include <stdexcept>
#include "core/contracts.hpp"
#include "core/tolerance.hpp"

namespace sysuq::orbit {

TwoPlanetUniverse::TwoPlanetUniverse(const UniverseConfig& config)
    : config_(config),
      state_(make_circular_binary(config.m1, config.m2, config.separation,
                                  config.gravity)) {
  SYSUQ_EXPECT(config.oblateness2 >= 0.0,
               "TwoPlanetUniverse: oblateness must be >= 0");
  state_.bodies[1].oblateness = config.oblateness2;
  if (config_.third && config_.third->injection_time <= 0.0) {
    state_.bodies.push_back(Body{config_.third->mass, config_.third->position,
                                 config_.third->velocity, 0.0});
    third_injected_ = true;
  }
}

void TwoPlanetUniverse::advance(double dt) {
  SYSUQ_EXPECT(dt > 0.0, "TwoPlanetUniverse: dt <= 0");
  verlet_step(state_, dt, config_.gravity);
  if (config_.third && !third_injected_ &&
      state_.time >= config_.third->injection_time) {
    state_.bodies.push_back(Body{config_.third->mass, config_.third->position,
                                 config_.third->velocity, 0.0});
    third_injected_ = true;
  }
}

bool TwoPlanetUniverse::third_planet_present() const { return third_injected_; }

Vec2 TwoPlanetUniverse::observe_position(std::size_t i, prob::Rng& rng,
                                         double sigma) const {
  if (i >= 2) throw std::out_of_range("observe_position: planet index");
  SYSUQ_EXPECT(sigma >= 0.0, "observe_position: sigma < 0");
  Vec2 p = state_.bodies[i].position;
  if (sigma > 0.0) {
    p.x += rng.gaussian(0.0, sigma);
    p.y += rng.gaussian(0.0, sigma);
  }
  return p;
}

DeterministicModel::DeterministicModel(double m1, double m2, double separation,
                                       const GravityParams& gravity)
    : state_(make_circular_binary(m1, m2, separation, gravity)),
      gravity_(gravity) {
  SYSUQ_ENSURE(state_.bodies.size() == 2,
               "DeterministicModel: binary construction failed");
}

void DeterministicModel::advance(double dt) {
  SYSUQ_EXPECT(dt > 0.0, "DeterministicModel: dt <= 0");
  rk4_step(state_, dt, gravity_);
}

Vec2 DeterministicModel::predicted_position(std::size_t i) const {
  if (i >= state_.bodies.size())
    throw std::out_of_range("predicted_position: planet index");
  return state_.bodies[i].position;
}

FrequentistModel::FrequentistModel(double extent, std::size_t bins)
    : hist_(-extent, extent, bins, -extent, extent, bins) {
  SYSUQ_EXPECT(extent > 0.0, "FrequentistModel: extent");
}

void FrequentistModel::observe(Vec2 position) {
  hist_.add(position.x, position.y);
}

double FrequentistModel::frame_probability(double x0, double x1, double y0,
                                           double y1) const {
  return hist_.frame_probability(x0, x1, y0, y1);
}

double FrequentistModel::out_of_domain_fraction() const {
  const std::size_t total = hist_.total() + hist_.outside();
  if (total == 0) return 0.0;
  return static_cast<double>(hist_.outside()) / static_cast<double>(total);
}

double FrequentistModel::distance(const FrequentistModel& other) const {
  return hist_.total_variation(other.hist_);
}

double acceleration_residual(Vec2 prev, Vec2 cur, Vec2 next, double dt,
                             Vec2 other_position, double other_mass,
                             double other_oblateness,
                             const GravityParams& params) {
  SYSUQ_EXPECT(dt > 0.0, "acceleration_residual: dt <= 0");
  const Vec2 observed = (next - cur * 2.0 + prev) / (dt * dt);
  const std::vector<Body> pair{
      Body{1.0, cur, {}, 0.0},
      Body{other_mass, other_position, {}, other_oblateness}};
  const Vec2 predicted = acceleration(pair, 0, params);
  return (observed - predicted).norm();
}

SurpriseMonitor::SurpriseMonitor(std::size_t warmup, double ratio,
                                 std::size_t patience, double adapt_rate)
    : warmup_(warmup), ratio_(ratio), patience_(patience),
      adapt_rate_(adapt_rate) {
  SYSUQ_EXPECT(warmup != 0, "SurpriseMonitor: zero warmup");
  SYSUQ_EXPECT(ratio > 1.0, "SurpriseMonitor: ratio must exceed 1");
  SYSUQ_EXPECT(patience != 0, "SurpriseMonitor: patience 0");
  SYSUQ_EXPECT(adapt_rate > 0.0 && adapt_rate <= 1.0,
               "SurpriseMonitor: adapt_rate outside (0, 1]");
}

bool SurpriseMonitor::feed(double residual) {
  SYSUQ_EXPECT(residual >= 0.0, "SurpriseMonitor: negative residual");
  ++fed_;
  if (fed_ <= warmup_) {
    stats_.add(residual);
    if (fed_ == warmup_) {
      // Floor the level so a zero-residual warmup (perfect model) still
      // yields a meaningful threshold against numerical dust.
      level_ = std::max(stats_.mean() + stats_.stddev(), tolerance::kTiny);
    }
    return false;
  }
  if (triggered_) return false;
  const bool surprising = residual > ratio_ * level_;
  if (surprising) {
    if (++consecutive_ >= patience_) {
      triggered_ = true;
      trigger_index_ = fed_;
      return true;
    }
  } else {
    consecutive_ = 0;
    // Track slow drift only while the residual looks nominal.
    level_ = std::max((1.0 - adapt_rate_) * level_ + adapt_rate_ * residual,
                      tolerance::kTiny);
  }
  return false;
}

}  // namespace sysuq::orbit
