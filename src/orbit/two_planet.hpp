// The paper's running example as an executable modeling relation (Fig. 2):
//
//   physical system  = TwoPlanetUniverse (simulated ground truth; may have
//                      heterogeneous bodies and a hidden third planet)
//   formal system A  = DeterministicModel (ideal point-mass Newtonian
//                      ephemeris from the published initial conditions)
//   formal system B  = FrequentistModel (spatial occupancy probabilities
//                      estimated from repeated position observations)
//
// The gap between the universe and model A is *epistemic* when caused by
// idealization error (oblateness), and *ontological* when caused by a
// structure the model does not contain at all (the third planet).
#pragma once

#include <cstddef>
#include <optional>

#include "orbit/nbody.hpp"
#include "prob/histogram.hpp"
#include "prob/rng.hpp"
#include "prob/statistics.hpp"

namespace sysuq::orbit {

/// Configuration of the simulated universe.
struct UniverseConfig {
  double m1 = 1.0;
  double m2 = 0.5;
  double separation = 1.0;
  GravityParams gravity{};
  /// Mass inhomogeneity of planet 2 (0 = ideal point mass).
  double oblateness2 = 0.0;
  /// Optional hidden third planet, injected at `injection_time`.
  struct ThirdPlanet {
    double mass = 0.2;
    Vec2 position{3.0, 0.0};
    Vec2 velocity{0.0, 0.4};
    double injection_time = 0.0;
  };
  std::optional<ThirdPlanet> third;
};

/// The simulated physical system (ground truth).
class TwoPlanetUniverse {
 public:
  explicit TwoPlanetUniverse(const UniverseConfig& config);

  /// Advances the universe by dt using the symplectic integrator; injects
  /// the third planet when its injection time is crossed.
  void advance(double dt);

  /// Current state (2 or 3 bodies).
  [[nodiscard]] const SystemState& state() const { return state_; }

  /// Current simulation time.
  [[nodiscard]] double time() const { return state_.time; }

  /// True once the third planet has been injected.
  [[nodiscard]] bool third_planet_present() const;

  /// Noisy position observation of planet i (i in {0, 1}): the domain
  /// analysis channel of the cybernetic loop. sigma = 0 gives the truth.
  [[nodiscard]] Vec2 observe_position(std::size_t i, prob::Rng& rng,
                                      double sigma) const;

  [[nodiscard]] const UniverseConfig& config() const { return config_; }

 private:
  UniverseConfig config_;
  SystemState state_;
  bool third_injected_ = false;
};

/// Model A: deterministic Newtonian two-body ephemeris integrated from
/// the initial conditions with ideal point masses — regardless of what
/// the real universe contains.
class DeterministicModel {
 public:
  /// Builds the model from the universe's *initial* published conditions
  /// (masses, separation); the model never sees oblateness or third
  /// planets — that is exactly its epistemic/ontological blind spot.
  DeterministicModel(double m1, double m2, double separation,
                     const GravityParams& gravity);

  /// Advances the model's internal ephemeris by dt (RK4).
  void advance(double dt);

  /// Predicted position of planet i at the model's current time.
  [[nodiscard]] Vec2 predicted_position(std::size_t i) const;

  [[nodiscard]] double time() const { return state_.time; }

 private:
  SystemState state_;
  GravityParams gravity_;
};

/// Model B: frequentist spatial-occupancy model of one planet (Fig. 2's
/// probabilistic formal system). "With an infinite amount of observations,
/// the exact probabilities to find either of the two bodies within a
/// spatial frame can be inferred."
class FrequentistModel {
 public:
  /// Occupancy histogram over [-extent, extent]^2 with bins^2 cells.
  FrequentistModel(double extent, std::size_t bins);

  /// Records one position observation.
  void observe(Vec2 position);

  /// Number of observations so far.
  [[nodiscard]] std::size_t observation_count() const { return hist_.total(); }

  /// Empirical probability that the planet is inside the axis-aligned
  /// frame — the paper's "probability to find a point mass in a certain
  /// frame".
  [[nodiscard]] double frame_probability(double x0, double x1, double y0,
                                         double y1) const;

  /// Fraction of observations that fell outside the modeled extent — an
  /// ontological indicator: the world exceeds the model's domain.
  [[nodiscard]] double out_of_domain_fraction() const;

  /// Underlying histogram (for entropy / distance computations).
  [[nodiscard]] const prob::Histogram2D& histogram() const { return hist_; }

  /// Total-variation distance to another equally shaped model: the
  /// epistemic gap between two finite-sample estimates (or between an
  /// estimate and a quasi-exact long-run reference).
  [[nodiscard]] double distance(const FrequentistModel& other) const;

 private:
  prob::Histogram2D hist_;
};

/// Dynamics-level model residual: the difference between the acceleration
/// *observed* on planet `i` (second finite difference of three
/// consecutive observed positions at spacing dt) and the acceleration the
/// two-body point-mass model *predicts* at the observed configuration.
///
/// For an ideal two-planet universe this is integrator noise, O(dt^2),
/// and stays flat over time; an unmodeled third planet adds its full
/// gravitational pull — an abrupt, sustained jump. This is the classical
/// anomalous-perturbation test (how Neptune betrayed its existence) and
/// the natural input for SurpriseMonitor.
[[nodiscard]] double acceleration_residual(Vec2 prev, Vec2 cur, Vec2 next,
                                           double dt, Vec2 other_position,
                                           double other_mass,
                                           double other_oblateness,
                                           const GravityParams& params);

/// Tracks the residual between model-A predictions and observed truth and
/// flags "surprise": residuals incompatible with the *recent* residual
/// level. This is the executable form of the paper's Sec. III.C test —
/// "we observe a behavior of the planets that contradicts the prediction
/// by the models".
///
/// The reference level adapts slowly (exponential moving average), so the
/// monitor tolerates the gradual model drift every imperfect model
/// accumulates (an *epistemic* gap) and fires only on abrupt structural
/// departures (the *ontological* event). The level is frozen while a
/// residual is surprising, so a genuine anomaly cannot talk the monitor
/// into accepting it.
class SurpriseMonitor {
 public:
  /// `warmup` residuals establish the initial level; afterwards a
  /// residual counts as surprising when it exceeds `ratio` times the
  /// adaptive level; `patience` consecutive surprising residuals trigger.
  /// `adapt_rate` is the EWMA weight for level updates (0 < rate <= 1).
  SurpriseMonitor(std::size_t warmup, double ratio, std::size_t patience,
                  double adapt_rate = 0.05);

  /// Feeds one |prediction - truth| residual; returns true when the
  /// monitor triggers (first time the surprise criterion is met).
  bool feed(double residual);

  /// True once triggered.
  [[nodiscard]] bool triggered() const { return triggered_; }

  /// Residual index at which the trigger fired (observation count),
  /// or 0 if not triggered.
  [[nodiscard]] std::size_t trigger_index() const { return trigger_index_; }

  /// Warmup residual statistics.
  [[nodiscard]] double calibrated_mean() const { return stats_.mean(); }
  [[nodiscard]] double calibrated_stddev() const { return stats_.stddev(); }

  /// Current adaptive residual level.
  [[nodiscard]] double level() const { return level_; }

 private:
  std::size_t warmup_;
  double ratio_;
  std::size_t patience_;
  double adapt_rate_;
  prob::RunningStats stats_;
  double level_ = 0.0;
  std::size_t fed_ = 0;
  std::size_t consecutive_ = 0;
  bool triggered_ = false;
  std::size_t trigger_index_ = 0;
};

}  // namespace sysuq::orbit
